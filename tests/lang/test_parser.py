"""MiniC parser tests."""

import pytest

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.parser import parse


def parse_expr(text):
    program = parse("func main() { return %s; }" % text)
    return program.functions[0].body.statements[0].value


class TestTopLevel:
    def test_globals_and_functions(self):
        program = parse("var a; var b[8]; var c = 7; func main() { }")
        assert [g.name for g in program.globals] == ["a", "b", "c"]
        assert program.globals[1].size == 8
        assert program.globals[2].init == 7
        assert program.functions[0].name == "main"

    def test_params(self):
        program = parse("func f(a, b, c) { }")
        assert program.functions[0].params == ["a", "b", "c"]

    def test_too_many_params(self):
        with pytest.raises(CompileError):
            parse("func f(a, b, c, d, e) { }")

    def test_array_initialiser_rejected(self):
        with pytest.raises(CompileError):
            parse("var a[4] = 1;")

    def test_zero_size_array_rejected(self):
        with pytest.raises(CompileError):
            parse("var a[0];")

    def test_junk_at_top_level(self):
        with pytest.raises(CompileError):
            parse("return 1;")


class TestStatements:
    def test_local_var(self):
        program = parse("func f() { var x = 3; }")
        stmt = program.functions[0].body.statements[0]
        assert isinstance(stmt, ast.LocalVar)
        assert stmt.init.value == 3

    def test_local_array_rejected(self):
        with pytest.raises(CompileError):
            parse("func f() { var x[4]; }")

    def test_assignment_forms(self):
        program = parse("func f() { x = 1; a[2] = 3; }")
        scalar, array = program.functions[0].body.statements
        assert isinstance(scalar, ast.Assign) and scalar.index is None
        assert isinstance(array, ast.Assign) and array.index.value == 2

    def test_if_else_chain(self):
        program = parse(
            "func f(x) { if (x) { } else if (x == 1) { } else { } }"
        )
        node = program.functions[0].body.statements[0]
        assert isinstance(node, ast.If)
        nested = node.otherwise.statements[0]
        assert isinstance(nested, ast.If)
        assert nested.otherwise is not None

    def test_while_and_for(self):
        program = parse(
            "func f() { while (1) { break; } for (var i = 0; i < 4; i = i + 1) { continue; } }"
        )
        loop, forloop = program.functions[0].body.statements
        assert isinstance(loop, ast.While)
        assert isinstance(loop.body.statements[0], ast.Break)
        assert isinstance(forloop, ast.For)
        assert isinstance(forloop.body.statements[0], ast.Continue)

    def test_for_with_empty_clauses(self):
        program = parse("func f() { for (;;) { break; } }")
        node = program.functions[0].body.statements[0]
        assert node.init is None and node.cond is None and node.step is None

    def test_return_without_value(self):
        program = parse("func f() { return; }")
        assert program.functions[0].body.statements[0].value is None

    def test_expression_statement(self):
        program = parse("func f() { g(); } func g() { }")
        assert isinstance(program.functions[0].body.statements[0], ast.ExprStatement)

    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse("func f() { x = 1 }")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        expr = parse_expr("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_logical_lowest(self):
        expr = parse_expr("1 | 2 && 3")
        assert expr.op == "&&"
        assert expr.left.op == "|"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"
        assert expr.right.value == 3

    def test_unary_chain(self):
        expr = parse_expr("!~-1")
        assert expr.op == "!"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "-"

    def test_call_and_index(self):
        expr = parse_expr("f(1, g(2)) + a[3]")
        assert expr.left.name == "f"
        assert expr.left.args[1].name == "g"
        assert expr.right.name == "a"

    def test_unbalanced_paren(self):
        with pytest.raises(CompileError):
            parse_expr("(1 + 2")

    def test_error_line_number(self):
        with pytest.raises(CompileError) as excinfo:
            parse("func f() {\n  x = ;\n}")
        assert excinfo.value.line == 2
