"""Random-program compiler fuzzing.

Hypothesis generates whole MiniC programs from a small grammar
(assignments, arithmetic over locals/globals/arrays, if/while with
bounded loops) and asserts that the compiled guest execution matches
the reference oracle exactly -- the strongest form of the compiler
differential, because the *structure* of the program is random, not
just its inputs.

Also checks that the constant-immediate peephole changes instruction
counts but never results.
"""

from hypothesis import given, settings, strategies as st

from repro.lang import compile_minic
from repro.lang.parser import parse
from tests.lang.oracle import Oracle
from tests.lang.util import run_minic

_VARS = ("a", "b", "c")
_BINOPS = ("+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%")
_CMPOPS = ("==", "!=", "<", "<=", ">", ">=")


@st.composite
def _expr(draw, depth=0):
    choice = draw(st.integers(min_value=0, max_value=4 if depth < 2 else 1))
    if choice == 0:
        return str(draw(st.integers(min_value=0, max_value=0xFFFF)))
    if choice == 1:
        return draw(st.sampled_from(_VARS))
    if choice == 2:
        left = draw(_expr(depth + 1))
        right = draw(_expr(depth + 1))
        op = draw(st.sampled_from(_BINOPS))
        return "(%s %s %s)" % (left, op, right)
    if choice == 3:
        left = draw(_expr(depth + 1))
        right = draw(_expr(depth + 1))
        op = draw(st.sampled_from(_CMPOPS))
        return "(%s %s %s)" % (left, op, right)
    # Array read with a bounded index.
    index = draw(_expr(depth + 1))
    return "arr[(%s) %% 8]" % index


@st.composite
def _statement(draw, depth=0):
    choice = draw(st.integers(min_value=0, max_value=4 if depth < 2 else 1))
    if choice == 0:
        return "%s = %s;" % (draw(st.sampled_from(_VARS)), draw(_expr()))
    if choice == 1:
        return "arr[(%s) %% 8] = %s;" % (draw(_expr()), draw(_expr()))
    if choice == 2:
        cond = draw(_expr())
        body = draw(_statement(depth + 1))
        if draw(st.booleans()):
            other = draw(_statement(depth + 1))
            return "if (%s) { %s } else { %s }" % (cond, body, other)
        return "if (%s) { %s }" % (cond, body)
    if choice == 3:
        # A strictly bounded loop.  Each nesting depth owns its counter
        # (k0/k1/k2) so nested loops cannot reset each other's counter
        # and livelock.
        body = draw(_statement(depth + 1))
        bound = draw(st.integers(min_value=1, max_value=5))
        counter = "k%d" % depth
        return (
            "%s = 0; while (%s < %d) { %s %s = %s + 1; }"
            % (counter, counter, bound, body, counter, counter)
        )
    return "%s = %s;" % (draw(st.sampled_from(_VARS)), draw(_expr()))


@st.composite
def minic_program(draw):
    statements = draw(st.lists(_statement(), min_size=1, max_size=6))
    body = "\n    ".join(statements)
    return """
var arr[8];
var out;

func main(a0) {
    var a = a0;
    var b = 12345;
    var c = 0;
    var k0 = 0;
    var k1 = 0;
    var k2 = 0;
    %s
    out = a ^ b ^ c;
    var i = 0;
    while (i < 8) { out = out + arr[i]; i = i + 1; }
    return out;
}
""" % body


class TestRandomPrograms:
    @settings(max_examples=40, deadline=None)
    @given(source=minic_program(), seed=st.integers(min_value=0, max_value=0xFFFF))
    def test_compiled_matches_oracle(self, source, seed):
        compiled, board = run_minic(source, args=(seed,))
        oracle = Oracle(parse(source))
        expected = oracle.call("main", seed)
        assert compiled == expected
        # Globals agree too.
        from tests.lang.util import read_global

        assert read_global(board, source, "out") == oracle.globals["out"]
        assert read_global(board, source, "arr") == oracle.globals["arr"]

    @settings(max_examples=15, deadline=None)
    @given(source=minic_program(), seed=st.integers(min_value=0, max_value=0xFFFF))
    def test_peephole_preserves_semantics(self, source, seed):
        """Optimized and unoptimized compilations agree on results, and
        the peephole never grows the code."""
        optimized = compile_minic(source, optimize=True)
        plain = compile_minic(source, optimize=False)
        assert len(optimized.text_asm.splitlines()) <= len(plain.text_asm.splitlines())

        from tests.lang.util import run_minic as run

        # run_minic uses the default (optimized) pipeline; build the
        # unoptimized variant manually through the same runner by
        # monkey-free recompilation: execute both and compare.
        result_opt, _board = run(source, args=(seed,))
        oracle = Oracle(parse(source))
        assert result_opt == oracle.call("main", seed)


class TestPeepholeEffect:
    def test_immediate_forms_used(self):
        unit = compile_minic("func main(a) { return a + 3; }")
        assert "addi" in unit.text_asm
        assert "li r5" not in unit.text_asm

    def test_large_constants_still_materialised(self):
        unit = compile_minic("func main(a) { return a + 70000; }")
        assert "add r4, r4, r5" in unit.text_asm

    def test_division_not_peepholed(self):
        unit = compile_minic("func main(a) { return a / 3; }")
        assert "udiv" in unit.text_asm

    def test_cmpi_used_for_constant_compare(self):
        unit = compile_minic("func main(a) { return a < 10; }")
        assert "cmpi r4, 10" in unit.text_asm

    def test_swapped_compare_rewritten(self):
        unit = compile_minic("func main(a) { return a <= 10; }")
        assert "cmpi r4, 11" in unit.text_asm
        assert "blo" in unit.text_asm
        unit = compile_minic("func main(a) { return a > 10; }")
        assert "cmpi r4, 11" in unit.text_asm
        assert "bhs" in unit.text_asm

    def test_boundary_constant_not_rewritten(self):
        # 0xFFFF cannot become 0x10000 in a 16-bit immediate.
        unit = compile_minic("func main(a) { return a <= 65535; }")
        assert "cmp r5, r4" in unit.text_asm

    def test_optimize_flag_off(self):
        unit = compile_minic("func main(a) { return a + 3; }", optimize=False)
        # The constant is materialised into a register (no peephole);
        # only the frame setup uses immediate adds.
        assert "li r5, 0x00000003" in unit.text_asm
        assert "add r4, r4, r5" in unit.text_asm
