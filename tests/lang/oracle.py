"""A reference MiniC interpreter used as a differential-testing oracle.

Evaluates the parsed AST directly in Python with the same unsigned
32-bit semantics the code generator promises, so compiled-and-executed
results can be checked against it.
"""

from repro.lang import ast

MASK = 0xFFFFFFFF


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class Oracle:
    """Executes a MiniC program AST in Python."""

    def __init__(self, program, mmio=None):
        self.program = program
        self.functions = {f.name: f for f in program.functions}
        self.globals = {}
        self.mmio = mmio if mmio is not None else {}
        self.console = bytearray()
        for decl in program.globals:
            if decl.size is not None:
                self.globals[decl.name] = [0] * decl.size
            else:
                self.globals[decl.name] = (decl.init or 0) & MASK

    def call(self, name, *args):
        function = self.functions[name]
        local_env = dict(zip(function.params, (a & MASK for a in args)))
        try:
            self._block(function.body, local_env)
        except _Return as ret:
            return ret.value & MASK
        return 0

    # -- statements ----------------------------------------------------
    def _block(self, block, env):
        for statement in block.statements:
            self._statement(statement, env)

    def _statement(self, node, env):
        if isinstance(node, ast.LocalVar):
            env[node.name] = self._expr(node.init, env) if node.init else 0
        elif isinstance(node, ast.Assign):
            value = self._expr(node.value, env)
            if node.index is not None:
                index = self._expr(node.index, env)
                self.globals[node.target][index] = value
            elif node.target in env:
                env[node.target] = value
            else:
                self.globals[node.target] = value
        elif isinstance(node, ast.If):
            if self._expr(node.cond, env):
                self._block(node.then, env)
            elif node.otherwise is not None:
                self._block(node.otherwise, env)
        elif isinstance(node, ast.While):
            while self._expr(node.cond, env):
                try:
                    self._block(node.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(node, ast.For):
            if node.init is not None:
                self._statement(node.init, env)
            while node.cond is None or self._expr(node.cond, env):
                try:
                    self._block(node.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if node.step is not None:
                    self._statement(node.step, env)
        elif isinstance(node, ast.Return):
            raise _Return(self._expr(node.value, env) if node.value else 0)
        elif isinstance(node, ast.Break):
            raise _Break()
        elif isinstance(node, ast.Continue):
            raise _Continue()
        elif isinstance(node, ast.ExprStatement):
            self._expr(node.expr, env)
        else:
            raise AssertionError("unknown statement %r" % node)

    # -- expressions -----------------------------------------------------
    def _expr(self, node, env):
        if isinstance(node, ast.Number):
            return node.value
        if isinstance(node, ast.Name):
            if node.name in env:
                return env[node.name]
            value = self.globals[node.name]
            return value if isinstance(value, int) else 0
        if isinstance(node, ast.Index):
            return self.globals[node.name][self._expr(node.index, env)]
        if isinstance(node, ast.Call):
            if node.name == "putc":
                # putc evaluates to the written character (as compiled).
                value = self._expr(node.args[0], env)
                self.console.append(value & 0xFF)
                return value & MASK
            if node.name == "mmio_read":
                return self.mmio.get(self._expr(node.args[0], env), 0)
            if node.name == "mmio_write":
                self.mmio[self._expr(node.args[0], env)] = self._expr(node.args[1], env)
                return 0
            return self.call(node.name, *(self._expr(a, env) for a in node.args))
        if isinstance(node, ast.Unary):
            value = self._expr(node.operand, env)
            if node.op == "-":
                return (-value) & MASK
            if node.op == "~":
                return (~value) & MASK
            return 0 if value else 1
        if isinstance(node, ast.Binary):
            if node.op == "&&":
                return 1 if self._expr(node.left, env) and self._expr(node.right, env) else 0
            if node.op == "||":
                return 1 if self._expr(node.left, env) or self._expr(node.right, env) else 0
            left = self._expr(node.left, env)
            right = self._expr(node.right, env)
            return self._binary(node.op, left, right)
        raise AssertionError("unknown expression %r" % node)

    @staticmethod
    def _binary(op, a, b):
        if op == "+":
            return (a + b) & MASK
        if op == "-":
            return (a - b) & MASK
        if op == "*":
            return (a * b) & MASK
        if op == "/":
            return a // b if b else 0
        if op == "%":
            return a % b if b else 0
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return (a << (b & 31)) & MASK
        if op == ">>":
            return a >> (b & 31)
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        if op == "<":
            return 1 if a < b else 0
        if op == "<=":
            return 1 if a <= b else 0
        if op == ">":
            return 1 if a > b else 0
        if op == ">=":
            return 1 if a >= b else 0
        raise AssertionError("unknown operator %r" % op)
