"""MiniC lexer tests."""

import pytest

from repro.errors import CompileError
from repro.lang.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_numbers(self):
        assert kinds("0 42 0x1f") == [("num", 0), ("num", 42), ("num", 31)]

    def test_number_wraps_to_32_bits(self):
        assert kinds("4294967296")[0] == ("num", 0)

    def test_identifiers_and_keywords(self):
        assert kinds("var x while foo_1") == [
            ("kw", "var"),
            ("ident", "x"),
            ("kw", "while"),
            ("ident", "foo_1"),
        ]

    def test_maximal_munch_operators(self):
        assert kinds("<<= >= == = <") == [
            ("op", "<<"),
            ("op", "="),
            ("op", ">="),
            ("op", "=="),
            ("op", "="),
            ("op", "<"),
        ]

    def test_all_single_operators(self):
        source = "+ - * / % & | ^ ~ ! ( ) { } [ ] , ;"
        assert all(kind == "op" for kind, _v in kinds(source))

    def test_line_comments(self):
        assert kinds("1 // comment\n2") == [("num", 1), ("num", 2)]

    def test_block_comments(self):
        assert kinds("1 /* x\ny */ 2") == [("num", 1), ("num", 2)]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_line_numbers_after_block_comment(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestErrors:
    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* never ends")

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")

    def test_malformed_hex(self):
        with pytest.raises(CompileError):
            tokenize("0x")

    def test_malformed_number(self):
        with pytest.raises(CompileError):
            tokenize("12ab")


class TestTokenType:
    def test_equality(self):
        assert Token("num", 1, 1) == Token("num", 1, 99)
        assert Token("num", 1, 1) != Token("num", 2, 1)

    def test_repr(self):
        assert "num" in repr(Token("num", 1, 1))
