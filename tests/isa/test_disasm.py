"""Disassembler tests: spot checks plus an assemble/disassemble round trip."""

from hypothesis import given, strategies as st

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, disassemble_range
from repro.isa.encoding import Cond, Op, encode


class TestDisassemble:
    def test_nop(self):
        assert disassemble(encode(Op.NOP)) == "nop"

    def test_alu(self):
        assert disassemble(encode(Op.ADD, rd=1, rn=2, rm=3)) == "add r1, r2, r3"

    def test_sp_lr_names(self):
        assert disassemble(encode(Op.MOV, rd=13, rm=14)) == "mov sp, lr"

    def test_memory_with_offset(self):
        assert disassemble(encode(Op.LDR, rd=0, rn=1, imm=-4)) == "ldr r0, [r1, #-4]"

    def test_memory_without_offset(self):
        assert disassemble(encode(Op.STR, rd=2, rn=3)) == "str r2, [r3]"

    def test_branch_with_pc(self):
        text = disassemble(encode(Op.B, imm=1), pc=0x1000)
        assert text == "b 0x00001008"

    def test_conditional_branch(self):
        text = disassemble(encode(Op.B, imm=0, cond=Cond.NE), pc=0x0)
        assert text.startswith("bne ")

    def test_undefined_word(self):
        assert "undefined" in disassemble(0x7A000000)

    def test_coprocessor(self):
        assert disassemble(encode(Op.MRC, rd=0, rn=15, imm=3)) == "mrc r0, p15, c3"

    def test_system(self):
        assert disassemble(encode(Op.SWI, imm=7)) == "swi #7"
        assert disassemble(encode(Op.HALT, imm=2)) == "halt #2"


_SIMPLE_LINES = st.sampled_from(
    [
        "nop",
        "add r1, r2, r3",
        "subi r4, r4, 1",
        "movi r0, 99",
        "ldr r0, [r1, #8]",
        "str r2, [sp, #-4]",
        "br lr",
        "swi #1",
        "mrc r0, p15, c3",
        "und",
        "sret",
    ]
)


class TestRoundTrip:
    @given(lines=st.lists(_SIMPLE_LINES, min_size=1, max_size=20))
    def test_disassembly_reassembles_to_same_words(self, lines):
        source = "\n".join("    " + line for line in lines) + "\n"
        prog = assemble(source)
        seg = prog.segments[0]
        first = [
            int.from_bytes(seg.data[i : i + 4], "little")
            for i in range(0, len(seg.data), 4)
        ]
        resource = "\n".join("    " + disassemble(w) for w in first) + "\n"
        prog2 = assemble(resource)
        seg2 = prog2.segments[0]
        second = [
            int.from_bytes(seg2.data[i : i + 4], "little")
            for i in range(0, len(seg2.data), 4)
        ]
        assert first == second


class TestDisassembleRange:
    def test_labels_and_lines(self):
        prog = assemble("_start:\n    nop\n    swi #1\n")
        seg = prog.segments[0]

        def read_word(addr):
            off = addr - seg.base
            return int.from_bytes(seg.data[off : off + 4], "little")

        lines = disassemble_range(read_word, seg.base, 2, symbols=prog.symbols)
        assert lines[0] == "_start:"
        assert "nop" in lines[1]
        assert "swi #1" in lines[2]
