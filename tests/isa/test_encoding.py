"""Tests for SRV32 encodings and field packing."""

import pytest

from repro.isa.encoding import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    BLOCK_END_OPS,
    BRANCH_OPS,
    MEM_OPS,
    NOP_WORD,
    UND_WORD,
    VALID_OPCODES,
    Cond,
    Op,
    branch_offset,
    branch_target,
    encode,
    sext,
)


class TestSext:
    def test_positive(self):
        assert sext(0x7F, 8) == 127

    def test_negative(self):
        assert sext(0xFF, 8) == -1

    def test_sign_bit_only(self):
        assert sext(0x80, 8) == -128

    def test_zero(self):
        assert sext(0, 16) == 0

    def test_wide(self):
        assert sext(0xFFFFF, 20) == -1
        assert sext(0x7FFFF, 20) == 0x7FFFF


class TestEncode:
    def test_opcode_in_top_byte(self):
        word = encode(Op.ADD, rd=1, rn=2, rm=3)
        assert (word >> 24) == int(Op.ADD)

    def test_register_fields(self):
        word = encode(Op.ADD, rd=0xA, rn=0xB, rm=0xC)
        assert (word >> 20) & 0xF == 0xA
        assert (word >> 16) & 0xF == 0xB
        assert (word >> 12) & 0xF == 0xC

    def test_immediate_field(self):
        word = encode(Op.MOVI, rd=3, imm=0xBEEF)
        assert word & 0xFFFF == 0xBEEF

    def test_negative_memory_offset(self):
        word = encode(Op.LDR, rd=0, rn=1, imm=-8)
        assert word & 0xFFFF == 0xFFF8

    def test_branch_cond_field(self):
        word = encode(Op.B, imm=-1, cond=Cond.NE)
        assert (word >> 20) & 0xF == int(Cond.NE)
        assert word & 0xFFFFF == 0xFFFFF

    def test_register_out_of_range(self):
        with pytest.raises(ValueError):
            encode(Op.ADD, rd=16)

    def test_immediate_out_of_range(self):
        with pytest.raises(ValueError):
            encode(Op.MOVI, rd=0, imm=1 << 16)

    def test_branch_offset_out_of_range(self):
        with pytest.raises(ValueError):
            encode(Op.B, imm=1 << 19)

    def test_memory_offset_out_of_range(self):
        with pytest.raises(ValueError):
            encode(Op.LDR, rd=0, rn=0, imm=1 << 15)

    def test_nop_word_is_zero(self):
        assert NOP_WORD == 0

    def test_und_word_opcode(self):
        assert (UND_WORD >> 24) == 0xFF


class TestBranchMath:
    def test_forward_target(self):
        assert branch_target(0x1000, 0) == 0x1004

    def test_backward_target(self):
        assert branch_target(0x1000, -1) == 0x1000

    def test_offset_roundtrip(self):
        for pc, target in [(0x8000, 0x8000), (0x8000, 0x9000), (0x9000, 0x8004)]:
            off = branch_offset(pc, target)
            assert branch_target(pc, off) == target

    def test_unaligned_target_rejected(self):
        with pytest.raises(ValueError):
            branch_offset(0x1000, 0x1002)


class TestOpSets:
    def test_sets_are_disjoint_where_expected(self):
        assert not (ALU_REG_OPS & ALU_IMM_OPS)
        assert not (MEM_OPS & BRANCH_OPS)

    def test_block_end_contains_branches(self):
        assert BRANCH_OPS <= BLOCK_END_OPS

    def test_all_ops_valid(self):
        for op in Op:
            assert int(op) in VALID_OPCODES

    def test_opcode_values_unique(self):
        values = [int(op) for op in Op]
        assert len(values) == len(set(values))
