"""Tests for the SRV32 decoder, including property-based round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError
from repro.isa.decoder import DecodeCache, Instruction, decode
from repro.isa.encoding import Cond, Op, VALID_OPCODES, encode

_REG = st.integers(min_value=0, max_value=15)
_IMM16 = st.integers(min_value=0, max_value=0xFFFF)
_SIMM16 = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)
_SIMM20 = st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1)


class TestDecodeBasics:
    def test_alu_reg(self):
        insn = decode(encode(Op.SUB, rd=1, rn=2, rm=3))
        assert insn.op == Op.SUB
        assert (insn.rd, insn.rn, insn.rm) == (1, 2, 3)
        assert insn.is_alu_reg

    def test_alu_imm(self):
        insn = decode(encode(Op.ADDI, rd=4, rn=5, imm=100))
        assert insn.op == Op.ADDI
        assert insn.imm == 100
        assert insn.is_alu_imm

    def test_memory_offset_sign_extended(self):
        insn = decode(encode(Op.STR, rd=0, rn=1, imm=-4))
        assert insn.imm == -4
        assert insn.is_store and insn.is_mem

    def test_branch_fields(self):
        insn = decode(encode(Op.B, imm=-5, cond=Cond.GT))
        assert insn.cond == Cond.GT
        assert insn.imm == -5
        assert insn.is_direct_branch

    def test_indirect_branch(self):
        insn = decode(encode(Op.BR, rn=7))
        assert insn.is_indirect_branch
        assert insn.rn == 7

    def test_nonpriv_classification(self):
        assert decode(encode(Op.LDRT, rd=0, rn=1)).is_nonpriv
        assert not decode(encode(Op.LDR, rd=0, rn=1)).is_nonpriv

    def test_undefined_opcode_raises(self):
        with pytest.raises(DecodeError):
            decode(0x77_00_00_00)

    def test_undefined_condition_raises(self):
        bad = (int(Op.B) << 24) | (0xF << 20)
        with pytest.raises(DecodeError):
            decode(bad)

    def test_equality_and_hash(self):
        a = decode(encode(Op.NOP))
        b = decode(encode(Op.NOP))
        assert a == b
        assert hash(a) == hash(b)


class TestDecodeProperties:
    @given(op=st.sampled_from(sorted({Op.ADD, Op.SUB, Op.MUL, Op.AND})), rd=_REG, rn=_REG, rm=_REG)
    def test_alu_reg_roundtrip(self, op, rd, rn, rm):
        insn = decode(encode(op, rd=rd, rn=rn, rm=rm))
        assert (insn.op, insn.rd, insn.rn, insn.rm) == (op, rd, rn, rm)

    @given(rd=_REG, rn=_REG, imm=_SIMM16)
    def test_memory_roundtrip(self, rd, rn, imm):
        insn = decode(encode(Op.LDR, rd=rd, rn=rn, imm=imm))
        assert (insn.rd, insn.rn, insn.imm) == (rd, rn, imm)

    @given(imm=_SIMM20, cond=st.sampled_from(sorted(Cond)))
    def test_branch_roundtrip(self, imm, cond):
        insn = decode(encode(Op.B, imm=imm, cond=cond))
        assert (insn.imm, insn.cond) == (imm, cond)

    @given(word=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_decode_total(self, word):
        """decode either returns an Instruction or raises DecodeError --
        never anything else."""
        opbits = (word >> 24) & 0xFF
        try:
            insn = decode(word)
        except DecodeError:
            return
        assert isinstance(insn, Instruction)
        assert opbits in VALID_OPCODES


class TestDecodeCache:
    def test_hit_after_miss(self):
        cache = DecodeCache()
        word = encode(Op.ADDI, rd=1, rn=1, imm=1)
        first = cache.lookup(0x1000, word)
        second = cache.lookup(0x1000, word)
        assert first is second
        assert cache.misses == 1 and cache.hits == 1

    def test_changed_word_misses(self):
        cache = DecodeCache()
        cache.lookup(0x1000, encode(Op.NOP))
        insn = cache.lookup(0x1000, encode(Op.ADDI, rd=0, rn=0, imm=1))
        assert insn.op == Op.ADDI
        assert cache.misses == 2

    def test_invalidate_page(self):
        cache = DecodeCache()
        cache.lookup(0x1000, encode(Op.NOP))
        cache.lookup(0x1004, encode(Op.NOP))
        cache.lookup(0x2000, encode(Op.NOP))
        removed = cache.invalidate_page(0x1)
        assert removed == 2
        assert len(cache) == 1

    def test_invalidate_absent_page(self):
        cache = DecodeCache()
        assert cache.invalidate_page(0x5) == 0

    def test_capacity_flush(self):
        cache = DecodeCache(capacity=2)
        cache.lookup(0x1000, encode(Op.NOP))
        cache.lookup(0x1004, encode(Op.NOP))
        cache.lookup(0x1008, encode(Op.NOP))
        assert len(cache) == 1
