"""Tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.decoder import decode
from repro.isa.encoding import Cond, Op


def words(program):
    seg = program.segments[0]
    return [
        int.from_bytes(seg.data[i : i + 4], "little") for i in range(0, len(seg.data), 4)
    ]


class TestDirectives:
    def test_org_sets_base(self):
        prog = assemble(".org 0x8000\n_start:\n    nop\n")
        assert prog.segments[0].base == 0x8000
        assert prog.entry == 0x8000

    def test_word_literals(self):
        prog = assemble(".word 1, 2, 0xdeadbeef\n")
        assert words(prog) == [1, 2, 0xDEADBEEF]

    def test_word_forward_reference(self):
        prog = assemble(".word later\nlater:\n    nop\n")
        assert words(prog)[0] == 4

    def test_space(self):
        prog = assemble(".space 8\n    nop\n")
        assert len(prog.segments[0].data) == 12

    def test_align(self):
        prog = assemble("    nop\n.align 16\nhere:\n    nop\n")
        assert prog.symbol("here") == 16

    def test_page(self):
        prog = assemble("    nop\n.page\nhere:\n    nop\n")
        assert prog.symbol("here") == 4096

    def test_equ(self):
        prog = assemble(".equ BASE, 0x100\n    movi r0, BASE+4\n")
        insn = decode(words(prog)[0])
        assert insn.imm == 0x104

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 1\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a:\na:\n")

    def test_overlapping_segments_rejected(self):
        src = ".org 0x0\n.word 1, 2, 3, 4\n.org 0x4\n.word 9\n"
        with pytest.raises(AssemblerError):
            assemble(src)


class TestInstructions:
    def test_alu_reg(self):
        insn = decode(words(assemble("    add r1, r2, r3\n"))[0])
        assert (insn.op, insn.rd, insn.rn, insn.rm) == (Op.ADD, 1, 2, 3)

    def test_alu_imm(self):
        insn = decode(words(assemble("    subi r1, r1, 7\n"))[0])
        assert (insn.op, insn.imm) == (Op.SUBI, 7)

    def test_sp_lr_aliases(self):
        insn = decode(words(assemble("    mov sp, lr\n"))[0])
        assert (insn.rd, insn.rm) == (13, 14)

    def test_memory_forms(self):
        prog = assemble("    ldr r0, [r1]\n    str r2, [r3, #-8]\n")
        a, b = [decode(w) for w in words(prog)]
        assert (a.op, a.imm) == (Op.LDR, 0)
        assert (b.op, b.imm) == (Op.STR, -8)

    def test_li_emits_two_words(self):
        prog = assemble("    li r4, 0x12345678\n")
        a, b = [decode(w) for w in words(prog)]
        assert (a.op, a.imm) == (Op.MOVI, 0x5678)
        assert (b.op, b.imm) == (Op.MOVT, 0x1234)

    def test_li_forward_symbol(self):
        prog = assemble("    li r0, target\n    nop\ntarget:\n    nop\n")
        a, b = [decode(w) for w in words(prog)[:2]]
        value = a.imm | (b.imm << 16)
        assert value == prog.symbol("target")

    def test_branch_backward(self):
        prog = assemble("loop:\n    nop\n    b loop\n")
        insn = decode(words(prog)[1])
        assert insn.op == Op.B and insn.imm == -2

    def test_branch_forward(self):
        prog = assemble("    beq out\n    nop\nout:\n    nop\n")
        insn = decode(words(prog)[0])
        assert insn.cond == Cond.EQ and insn.imm == 1

    def test_all_cond_suffixes(self):
        for suffix in ("eq", "ne", "lt", "ge", "le", "gt", "lo", "hs", "mi", "pl"):
            prog = assemble("x:\n    b%s x\n" % suffix)
            assert decode(words(prog)[0]).cond == Cond[suffix.upper()]

    def test_indirect_branches(self):
        prog = assemble("    br r5\n    blr r6\n")
        a, b = [decode(w) for w in words(prog)]
        assert (a.op, a.rn) == (Op.BR, 5)
        assert (b.op, b.rn) == (Op.BLR, 6)

    def test_system_ops(self):
        prog = assemble("    swi #3\n    sret\n    halt #9\n    cps #1\n    wfi\n    und\n")
        ops = [decode(w).op for w in words(prog)]
        assert ops == [Op.SWI, Op.SRET, Op.HALT, Op.CPS, Op.WFI, Op.UND]

    def test_coprocessor_ops(self):
        prog = assemble("    mrc r1, p15, c3\n    mcr r2, p1, c1\n")
        a, b = [decode(w) for w in words(prog)]
        assert (a.op, a.rd, a.rn, a.imm) == (Op.MRC, 1, 15, 3)
        assert (b.op, b.rd, b.rn, b.imm) == (Op.MCR, 2, 1, 1)

    def test_comment_stripping(self):
        prog = assemble("    nop ; trailing comment\n")
        assert decode(words(prog)[0]).op == Op.NOP

    def test_hash_is_not_a_comment(self):
        prog = assemble("    ldr r0, [r1, #4]\n")
        assert decode(words(prog)[0]).imm == 4

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("    frobnicate r0\n")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("    mov r99, r0\n")

    def test_undefined_symbol_reported(self):
        with pytest.raises(AssemblerError):
            assemble("    b nowhere\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("    nop\n    bogus\n")
        assert excinfo.value.line == 2


class TestProgram:
    def test_word_at(self):
        prog = assemble(".org 0x100\n.word 0xabcd\n")
        assert prog.word_at(0x100) == 0xABCD
        with pytest.raises(KeyError):
            prog.word_at(0x200)

    def test_symbol_lookup_error(self):
        prog = assemble("    nop\n")
        with pytest.raises(KeyError):
            prog.symbol("missing")

    def test_multiple_segments_sorted(self):
        prog = assemble(".org 0x2000\n    nop\n.org 0x1000\n    nop\n")
        bases = [seg.base for seg in prog.segments]
        assert bases == [0x1000, 0x2000]

    def test_entry_defaults_to_first_segment(self):
        prog = assemble(".org 0x500\n    nop\n")
        assert prog.entry == 0x500

    def test_size(self):
        prog = assemble("    nop\n    nop\n")
        assert prog.size == 8
