"""ExperimentService tests: submission, fair scheduling, warm
resubmission, drain semantics and the socket round trip.

Scheduling tests drive :meth:`ExperimentService.run_next_slice`
synchronously (no scheduler thread), so slice order is deterministic
and assertable; the socket tests start the real daemon threads on a
per-test socket.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import (
    ExperimentService,
    ServeClient,
    ServeError,
    ServiceError,
)

SMOKE_GRID = {
    "arch": "arm",
    "engines": ["simit"],
    "benchmarks": ["system-call"],
    "iterations": 4,
}


def adhoc(benchmarks, arch="arm", engines=("simit",), iterations=4):
    return {
        "arch": arch,
        "engines": list(engines),
        "benchmarks": list(benchmarks),
        "iterations": iterations,
    }


@pytest.fixture
def service(tmp_path):
    svc = ExperimentService(
        socket_path=os.fspath(tmp_path / "serve.sock"),
        dataset_dir=os.fspath(tmp_path / "dataset"),
        slice_size=1,
    )
    yield svc
    svc.runner.close()


def run_all(service):
    while service.run_next_slice(timeout=0):
        pass


class TestSubmit:
    def test_grid_submission_expands_cells(self, service):
        response = service.submit(
            {"grid": adhoc(["system-call", "tlb-flush"]), "tenant": "t"}
        )
        assert response["cells"] == 2
        assert response["slices"] == 2
        assert response["job"] == "j0001"

    def test_manifest_ref_resolves_daemon_side(self, service):
        response = service.submit({"manifest_ref": "smoke"})
        assert response["cells"] > 0

    def test_manifest_payload_submission(self, service):
        payload = {
            "manifest": {"schema": 1, "name": "inline", "seed": 0},
            "grid": [adhoc(["system-call"])],
        }
        response = service.submit({"manifest": payload})
        assert response["cells"] == 1

    def test_bad_grid_is_refused_at_submit_time(self, service):
        with pytest.raises(ServiceError, match="bad manifest"):
            service.submit({"grid": adhoc(["no-such-benchmark"])})
        assert service.queue.depth() == 0

    def test_submission_without_body_is_refused(self, service):
        with pytest.raises(ServiceError, match="needs"):
            service.submit({"op": "submit"})

    def test_slices_honour_slice_size(self, tmp_path):
        svc = ExperimentService(
            socket_path=os.fspath(tmp_path / "s.sock"), slice_size=2
        )
        try:
            response = svc.submit(
                {"grid": adhoc(["system-call", "tlb-flush", "tlb-eviction"])}
            )
            assert response["slices"] == 2  # ceil(3 / 2)
        finally:
            svc.runner.close()


class TestScheduling:
    def test_two_tenants_interleave_slice_by_slice(self, service):
        a = service.submit(
            {"grid": adhoc(["system-call", "tlb-flush"]), "tenant": "alice"}
        )
        b = service.submit(
            {"grid": adhoc(["tlb-eviction", "small-blocks"]), "tenant": "bob"}
        )
        run_all(service)
        tenants = [tenant for _job, tenant in service.slice_log]
        assert tenants == ["alice", "bob", "alice", "bob"]
        for job_id in (a["job"], b["job"]):
            assert service._jobs[job_id].state == "done"

    def test_priority_orders_one_tenants_lane(self, service):
        low = service.submit(
            {"grid": adhoc(["system-call"]), "tenant": "t", "priority": 0}
        )
        high = service.submit(
            {"grid": adhoc(["tlb-flush"]), "tenant": "t", "priority": 5}
        )
        run_all(service)
        order = [job for job, _tenant in service.slice_log]
        assert order == [high["job"], low["job"]]

    def test_job_stats_accumulate_across_slices(self, service):
        response = service.submit(
            {"grid": adhoc(["system-call", "tlb-flush"]), "tenant": "t"}
        )
        run_all(service)
        job = service._jobs[response["job"]]
        assert job.state == "done"
        assert job.stats["executed"] == 2
        assert job.stats["dataset_appended"] == 2
        assert len(job.rows) == 2
        assert {row["tenant"] for row in job.rows} == {"t"}
        assert {row["job"] for row in job.rows} == {response["job"]}

    def test_warm_resubmission_executes_nothing(self, service):
        cold = service.submit({"grid": SMOKE_GRID, "tenant": "t"})
        run_all(service)
        assert service._jobs[cold["job"]].stats["executed"] == 1
        warm = service.submit({"grid": SMOKE_GRID, "tenant": "t"})
        run_all(service)
        job = service._jobs[warm["job"]]
        assert job.state == "done"
        assert job.stats["executed"] == 0
        assert job.stats["from_dataset"] == 1
        assert job.rows[0]["source"] == "dataset"

    def test_run_next_slice_empty_queue_returns_false(self, service):
        assert service.run_next_slice(timeout=0) is False

    def test_failed_job_is_not_resurrected_by_later_slices(self, service):
        response = service.submit(
            {"grid": adhoc(["system-call", "tlb-flush"]), "tenant": "t"}
        )
        job_id = response["job"]

        def explode(_specs):
            raise RuntimeError("slice exploded")

        service._resolvers[job_id].run = explode
        run_all(service)
        job = service._jobs[job_id]
        assert job.state == "failed"
        assert "slice exploded" in job.error
        # The second slice was dropped, not executed into a "done"
        # overwrite of the failure.
        assert all(logged != (job_id, "t") for logged in service.slice_log)


class TestDrain:
    def test_drain_cancels_queued_jobs(self, service):
        queued = service.submit({"grid": adhoc(["system-call"]), "tenant": "t"})
        service.drain()
        job = service._jobs[queued["job"]]
        assert job.state == "drained"
        assert job.done.is_set()
        assert service.queue.depth() == 0

    def test_submit_after_drain_is_refused(self, service):
        service.drain()
        with pytest.raises(ServiceError, match="draining"):
            service.submit({"grid": adhoc(["system-call"])})

    def test_drain_is_idempotent(self, service):
        service.drain()
        service.drain()

    def test_completed_work_survives_drain(self, service):
        done = service.submit({"grid": SMOKE_GRID, "tenant": "t"})
        run_all(service)
        queued = service.submit({"grid": adhoc(["tlb-flush"]), "tenant": "t"})
        service.drain()
        assert service._jobs[done["job"]].state == "done"
        assert service._jobs[queued["job"]].state == "drained"


class TestRequests:
    def test_unknown_op_is_an_error_response(self, service):
        response = service.handle_request({"op": "frobnicate"})
        assert response["ok"] is False
        assert "frobnicate" in response["error"]

    def test_ping_reports_identity(self, service):
        response = service.handle_request({"op": "ping"})
        assert response["ok"] is True
        assert response["protocol"] == 1
        assert response["pid"] == os.getpid()

    def test_status_unknown_job_is_refused(self, service):
        response = service.handle_request({"op": "status", "job": "j9999"})
        assert response["ok"] is False

    def test_request_exceptions_never_escape(self, service):
        response = service.handle_request({"op": "submit", "grid": 42})
        assert response["ok"] is False

    def test_service_status_counts_states(self, service):
        service.submit({"grid": SMOKE_GRID, "tenant": "t"})
        run_all(service)
        service.submit({"grid": adhoc(["tlb-flush"]), "tenant": "t"})
        response = service.handle_request({"op": "status"})
        assert response["ok"] is True
        assert response["states"] == {"done": 1, "queued": 1}
        assert response["queue_depth"] == 1


class TestSocket:
    def test_round_trip_over_the_socket(self, tmp_path):
        sock = os.fspath(tmp_path / "serve.sock")
        with ExperimentService(
            socket_path=sock, dataset_dir=os.fspath(tmp_path / "ds")
        ).start():
            client = ServeClient(sock, tenant="t")
            assert client.ping()["ok"] is True
            response = client.submit(grid=SMOKE_GRID)
            final = client.wait(response["job"], timeout=60)
            assert final["job"]["state"] == "done"
            assert final["job"]["executed"] == 1
            assert final["rows"][0]["status"] == "ok"
            overview = client.status()
            assert overview["states"] == {"done": 1}
            with pytest.raises(ServeError, match="unknown job"):
                client.wait("j9999", timeout=1)
        assert not os.path.exists(sock)  # stop() removed the socket

    def test_second_daemon_on_live_socket_is_refused(self, tmp_path):
        sock = os.fspath(tmp_path / "serve.sock")
        with ExperimentService(socket_path=sock).start():
            other = ExperimentService(socket_path=sock)
            try:
                with pytest.raises(ServiceError, match="already serving"):
                    other.start()
            finally:
                other.runner.close()

    def test_stale_socket_is_reclaimed(self, tmp_path):
        sock = tmp_path / "serve.sock"
        import socket as socket_mod

        dead = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        dead.bind(os.fspath(sock))
        dead.close()  # bound but never listening: connect will fail
        with ExperimentService(socket_path=os.fspath(sock)).start():
            assert ServeClient(os.fspath(sock)).is_up()

    def test_client_errors_when_no_daemon(self, tmp_path):
        client = ServeClient(os.fspath(tmp_path / "nothing.sock"))
        assert client.is_up() is False
        with pytest.raises(OSError):
            client.ping()


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        sock = os.fspath(tmp_path / "serve.sock")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--socket",
                sock,
                "--dataset-dir",
                os.fspath(tmp_path / "ds"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            client = ServeClient(sock)
            deadline = time.monotonic() + 20
            while not client.is_up():
                assert time.monotonic() < deadline, "daemon never came up"
                assert proc.poll() is None, proc.communicate()
                time.sleep(0.1)
            response = client.submit(grid=SMOKE_GRID)
            client.wait(response["job"], timeout=60)
            proc.send_signal(signal.SIGTERM)
            _out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        assert proc.returncode == 0, err
        assert "draining" in err
        assert not os.path.exists(sock)
        assert os.path.exists(tmp_path / "ds" / "_totals.json")
