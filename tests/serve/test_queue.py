"""FairQueue scheduling-order and lifecycle tests."""

import threading

import pytest

from repro.serve.queue import FairQueue, QueueClosed


def drain(queue):
    items = []
    while True:
        item = queue.pop(timeout=0)
        if item is None:
            return items
        items.append(item)


class TestOrdering:
    def test_single_tenant_fifo(self):
        queue = FairQueue()
        for n in range(5):
            queue.push("a", n)
        assert drain(queue) == [0, 1, 2, 3, 4]

    def test_priority_wins_within_tenant(self):
        queue = FairQueue()
        queue.push("a", "low", priority=0)
        queue.push("a", "high", priority=5)
        queue.push("a", "mid", priority=3)
        assert drain(queue) == ["high", "mid", "low"]

    def test_equal_priority_stays_fifo(self):
        queue = FairQueue()
        queue.push("a", "first", priority=1)
        queue.push("a", "second", priority=1)
        assert drain(queue) == ["first", "second"]

    def test_two_tenants_strictly_alternate(self):
        queue = FairQueue()
        for n in range(3):
            queue.push("a", "a%d" % n)
        for n in range(3):
            queue.push("b", "b%d" % n)
        assert drain(queue) == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_priority_is_per_tenant_not_global(self):
        # b's high priority reorders b's own lane; a still gets every
        # other slot.
        queue = FairQueue()
        queue.push("a", "a0", priority=0)
        queue.push("a", "a1", priority=0)
        queue.push("b", "b-low", priority=0)
        queue.push("b", "b-high", priority=9)
        assert drain(queue) == ["a0", "b-high", "a1", "b-low"]

    def test_weighted_tenant_gets_proportional_share(self):
        queue = FairQueue()
        queue.set_weight("a", 2)
        for n in range(4):
            queue.push("a", "a%d" % n)
        for n in range(2):
            queue.push("b", "b%d" % n)
        assert drain(queue) == ["a0", "a1", "b0", "a2", "a3", "b1"]

    def test_idle_tenant_does_not_block(self):
        queue = FairQueue()
        queue.push("a", "a0")
        queue.push("b", "b0")
        assert queue.pop(timeout=0) == "a0"
        assert queue.pop(timeout=0) == "b0"
        # b is now idle; a's later work must still flow.
        queue.push("a", "a1")
        queue.push("a", "a2")
        assert drain(queue) == ["a1", "a2"]

    def test_late_tenant_joins_the_cycle(self):
        queue = FairQueue()
        for n in range(4):
            queue.push("a", "a%d" % n)
        assert queue.pop(timeout=0) == "a0"
        queue.push("b", "b0")
        served = drain(queue)
        assert served.index("b0") < len(served) - 1  # not starved to the end


class TestLifecycle:
    def test_pop_timeout_returns_none(self):
        queue = FairQueue()
        assert queue.pop(timeout=0.01) is None

    def test_push_after_close_raises(self):
        queue = FairQueue()
        queue.close()
        with pytest.raises(QueueClosed):
            queue.push("a", 1)

    def test_close_drains_queued_items_then_none(self):
        queue = FairQueue()
        queue.push("a", 1)
        queue.close()
        assert queue.pop(timeout=0) == 1
        assert queue.pop(timeout=None) is None  # closed+empty: no block

    def test_close_wakes_blocked_consumer(self):
        queue = FairQueue()
        seen = []

        def consume():
            seen.append(queue.pop(timeout=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        queue.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert seen == [None]

    def test_cancel_pending_returns_everything(self):
        queue = FairQueue()
        queue.push("a", 1)
        queue.push("b", 2)
        queue.push("a", 3)
        dropped = queue.cancel_pending()
        assert sorted(dropped) == [1, 2, 3]
        assert queue.depth() == 0
        assert len(queue) == 0

    def test_depth_and_tenants_track_queued_work(self):
        queue = FairQueue()
        assert queue.tenants() == []
        queue.push("a", 1)
        queue.push("b", 2)
        assert queue.depth() == 2
        assert queue.tenants() == ["a", "b"]
        queue.pop(timeout=0)
        assert queue.tenants() == ["b"]

    def test_repr_mentions_state(self):
        queue = FairQueue()
        queue.push("a", 1)
        queue.close()
        text = repr(queue)
        assert "1 queued" in text and "closed" in text

    def test_producer_consumer_threads(self):
        queue = FairQueue()
        total = 200
        got = []

        def consume():
            while len(got) < total:
                item = queue.pop(timeout=2.0)
                if item is None:
                    return
                got.append(item)

        consumer = threading.Thread(target=consume)
        consumer.start()

        def produce(tenant):
            for n in range(total // 2):
                queue.push(tenant, (tenant, n))

        producers = [
            threading.Thread(target=produce, args=(t,)) for t in ("a", "b")
        ]
        for p in producers:
            p.start()
        for p in producers:
            p.join()
        consumer.join(timeout=5.0)
        assert len(got) == total
        # Per-tenant FIFO survives the race.
        for tenant in ("a", "b"):
            lane = [n for t, n in got if t == tenant]
            assert lane == sorted(lane)
