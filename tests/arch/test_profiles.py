"""Architecture-profile tests: boot emission, MMU setup, arch ops."""

import pytest

from repro.arch import ARCHES, ARM, X86, get_arch
from repro.arch.base import AsmWriter, Region
from repro.isa.assembler import assemble
from repro.machine import Board
from repro.machine.mmu import AP_USER_RW
from repro.platform import PCPLAT, PLATFORMS, VEXPRESS, get_platform
from repro.sim import FastInterpreter


def boot_and_run(arch, platform, body, extra_regions=(), max_insns=500_000):
    """Boot with the arch package (MMU on) and run ``body``."""
    w = AsmWriter()
    w.emit(".org 0x%08x" % platform.layout.vector_base)
    for _ in range(6):
        w.emit("    b _start")
    w.emit(".org 0x%08x" % platform.layout.code_base)
    w.emit("_start:")
    layout = platform.layout
    dev_base, dev_size = platform.device_region
    regions = [
        Region(layout.ram_base, layout.ram_base, 1 << 20, ap=AP_USER_RW),
        Region(layout.data_base, layout.data_base, 1 << 20, ap=AP_USER_RW, xn=True),
        Region(dev_base, dev_base, dev_size, xn=True),
    ] + list(extra_regions)
    arch.emit_boot(w, platform, regions)
    w.emit(body)
    board = Board(platform)
    board.load(assemble(w.text))
    engine = FastInterpreter(board, arch=arch)
    result = engine.run(max_insns=max_insns)
    return engine, board, result


class TestRegistry:
    def test_lookup(self):
        assert get_arch("arm") is ARM
        assert get_arch("x86") is X86
        with pytest.raises(KeyError):
            get_arch("mips")
        assert set(ARCHES) == {"arm", "x86"}

    def test_platform_lookup(self):
        assert get_platform("vexpress") is VEXPRESS
        assert get_platform("pcplat") is PCPLAT
        with pytest.raises(KeyError):
            get_platform("nonesuch")
        assert set(PLATFORMS) == {"vexpress", "pcplat"}


@pytest.mark.parametrize(
    "arch,platform",
    [(ARM, VEXPRESS), (X86, PCPLAT)],
    ids=["arm", "x86"],
)
class TestBoot:
    def test_mmu_enabled_and_code_runs(self, arch, platform):
        engine, board, result = boot_and_run(
            arch, platform, "    movi r4, 99\n    halt #0\n"
        )
        assert result.halted_ok
        assert board.cp15.mmu_enabled
        assert board.cpu.regs[4] == 99

    def test_translated_data_access(self, arch, platform):
        body = """
    li r1, 0x%08x
    li r2, 0xfeedface
    str r2, [r1]
    ldr r3, [r1]
    halt #0
""" % platform.layout.data_base
        _e, board, result = boot_and_run(arch, platform, body)
        assert result.halted_ok
        assert board.cpu.regs[3] == 0xFEEDFACE
        # The store really went to the identity-mapped physical page.
        assert board.memory.read32(platform.layout.data_base) == 0xFEEDFACE

    def test_unmapped_access_faults_to_vector(self, arch, platform):
        # Default vectors all branch to _start, which would loop; use a
        # dedicated program where the data-abort handler halts.
        w = AsmWriter()
        layout = platform.layout
        w.emit(".org 0x%08x" % layout.vector_base)
        w.emit("    b _start")
        w.emit("    b bad")
        w.emit("    b bad")
        w.emit("    b bad")
        w.emit("    b dabort")
        w.emit("    b bad")
        w.emit(".org 0x%08x" % layout.code_base)
        w.emit("_start:")
        dev_base, dev_size = platform.device_region
        regions = [
            Region(layout.ram_base, layout.ram_base, 1 << 20, ap=AP_USER_RW),
            Region(dev_base, dev_base, dev_size, xn=True),
        ]
        arch.emit_boot(w, platform, regions)
        w.emit("    li r1, 0x%08x" % layout.unmapped_vaddr)
        w.emit("    ldr r0, [r1]")
        w.emit("    halt #2")
        w.emit("bad:")
        w.emit("    halt #1")
        w.emit("dabort:")
        w.emit("    halt #0")
        board = Board(platform)
        board.load(assemble(w.text))
        engine = FastInterpreter(board, arch=arch)
        result = engine.run(max_insns=500_000)
        assert result.exit_reason.value == "halt"
        assert result.halt_code == 0
        assert engine.counters.data_aborts == 1

    def test_device_access_through_mmu(self, arch, platform):
        body = """
    li r1, 0x%08x
    ldr r2, [r1]
    halt #0
""" % platform.safedev_base
        _e, board, result = boot_and_run(arch, platform, body)
        assert result.halted_ok
        assert board.cpu.regs[2] == board.safedev.ID_VALUE

    def test_page_table_walk_depth(self, arch, platform):
        """The ARM profile uses single-level sections for megabyte
        regions; x86 always walks two levels."""
        engine, _board, result = boot_and_run(
            arch,
            platform,
            """
    li r1, 0x%08x
    ldr r2, [r1]
    halt #0
""" % platform.layout.data_base,
        )
        assert result.halted_ok
        counters = engine.counters
        assert counters.tlb_misses > 0
        ratio = counters.ptw_levels / counters.tlb_misses
        if arch.use_sections:
            assert ratio == pytest.approx(1.0)
        else:
            assert ratio == pytest.approx(2.0)


class TestArchOps:
    def test_arm_nonpriv_load_real(self):
        w = AsmWriter()
        assert ARM.emit_nonpriv_load(w, "r0", "r1") is True
        assert any("ldrt" in line for line in w.lines)

    def test_x86_nonpriv_is_noop(self):
        w = AsmWriter()
        assert X86.emit_nonpriv_load(w, "r0", "r1") is False
        assert any("nop" in line for line in w.lines)
        assert X86.supports_nonpriv is False

    def test_safe_coproc_sequences_differ(self):
        warm, wx86 = AsmWriter(), AsmWriter()
        ARM.emit_coproc_safe_access(warm, "r0")
        X86.emit_coproc_safe_access(wx86, "r0")
        assert "mrc" in warm.text and "p15" in warm.text
        assert "mcr" in wx86.text and "p1," in wx86.text

    def test_feature_summaries(self):
        assert "section" in ARM.feature_summary()["page tables"]
        assert ARM.feature_summary()["nonprivileged access"] == "yes"
        assert X86.feature_summary()["nonprivileged access"].startswith("no")

    def test_trigger_and_ack_use_platform_line(self):
        w = AsmWriter()
        ARM.emit_trigger_swirq(w, PCPLAT)
        assert "%d" % (1 << PCPLAT.swirq_line) in w.text


class TestRegionValidation:
    def test_unaligned_region_rejected(self):
        with pytest.raises(Exception):
            Region(0x10, 0x0, 0x1000)

    def test_section_alignment_detection(self):
        assert Region(0x0, 0x0, 1 << 20).is_section_aligned
        assert not Region(0x1000, 0x0, 1 << 20).is_section_aligned
        assert not Region(0x0, 0x0, 0x1000).is_section_aligned


class TestAsmWriter:
    def test_unique_labels(self):
        w = AsmWriter()
        assert w.label("x") != w.label("x")

    def test_place_and_text(self):
        w = AsmWriter()
        label = w.label("t")
        w.place(label)
        w.emit("    nop")
        assert w.text == "%s:\n    nop\n" % label
