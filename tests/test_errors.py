"""Exception-hierarchy tests."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            errors.AssemblerError,
            errors.DecodeError,
            errors.CompileError,
            errors.MachineError,
            errors.BusError,
            errors.UnsupportedFeatureError,
            errors.GuestHalted,
            errors.HarnessError,
        ):
            assert issubclass(cls, errors.ReproError)

    def test_bus_error_is_machine_error(self):
        assert issubclass(errors.BusError, errors.MachineError)


class TestMessages:
    def test_assembler_error_line(self):
        err = errors.AssemblerError("bad", line=7)
        assert err.line == 7
        assert "line 7" in str(err)

    def test_assembler_error_without_line(self):
        assert errors.AssemblerError("bad").line is None

    def test_compile_error_line(self):
        err = errors.CompileError("oops", line=3)
        assert "line 3" in str(err)

    def test_bus_error_fields(self):
        err = errors.BusError(0xDEAD0000, access="write")
        assert err.paddr == 0xDEAD0000
        assert "0xdead0000" in str(err)
        assert "write" in str(err)

    def test_unsupported_feature_fields(self):
        err = errors.UnsupportedFeatureError("gem5", "safedev")
        assert err.simulator == "gem5"
        assert err.feature == "safedev"
        assert "gem5" in str(err)

    def test_guest_halted_code(self):
        err = errors.GuestHalted(0xEE)
        assert err.code == 0xEE
        assert "238" in str(err)


class TestPackage:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)
