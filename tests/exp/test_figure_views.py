"""Figures as dataset views: manifest-populated regeneration identity.

The contract under test (tiny iteration scale to stay fast): running a
figure's manifest fills the dataset, after which the figure function
regenerates *identical* values through the dataset without executing a
single guest instruction.
"""

import math

import pytest

from repro.analysis import figures
from repro.core.runner import ExperimentRunner
from repro.exp import Dataset, DatasetResolver, run_manifest

SCALE = 0.02


def deep_equal(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, dict):
        return set(a) == set(b) and all(deep_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(deep_equal(x, y) for x, y in zip(a, b))
    return a == b


@pytest.fixture(scope="module")
def warm(tmp_path_factory):
    """A dataset pre-populated by the figure-2 and figure-7 manifests."""
    dataset = Dataset(tmp_path_factory.mktemp("exp") / "dataset")
    for number in (2, 7):
        manifest = figures.figure_manifest(number, scale=SCALE)
        with ExperimentRunner() as runner:
            result = run_manifest(manifest, runner, dataset=dataset)
        assert result.stats["from_dataset"] == 0
    return dataset


class TestFigureManifests:
    @pytest.mark.parametrize("number", [2, 6, 7, 8])
    def test_manifest_cells_cover_figure_grid(self, number):
        manifest = figures.figure_manifest(number, scale=SCALE)
        assert manifest.name == "figure%d" % number
        assert len(manifest.jobs()) > 0

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="figure"):
            figures.figure_manifest(3)


class TestFigureViews:
    def test_figure2_identical_with_zero_executions(self, warm):
        imperative = figures.figure2(scale=SCALE)
        with ExperimentRunner() as runner:
            resolver = DatasetResolver(runner, warm)
            view = figures.figure2(scale=SCALE, runner=resolver)
            executed = [
                row for row in resolver.jobs_log if row["source"] == "executed"
            ]
        assert executed == []
        assert deep_equal(imperative, view)

    def test_figure7_identical_with_zero_executions(self, warm):
        imperative = figures.figure7(scale=SCALE)
        with ExperimentRunner() as runner:
            view = figures.figure7(scale=SCALE, runner=runner, dataset=warm)
        assert deep_equal(imperative, view)
        # Only figure7's non-executing (static) cells miss the dataset;
        # nothing was executed to regenerate the table.
        fresh = Dataset(warm.root)
        with ExperimentRunner() as runner:
            resolver = DatasetResolver(runner, fresh)
            figures.figure7(scale=SCALE, runner=resolver)
            assert not [
                row for row in resolver.jobs_log if row["source"] == "executed"
            ]

    def test_figure8_from_figure2_panels(self, warm):
        """figure8 composed from dataset-backed figure2/6 data equals
        the imperative one (figure6 cells execute once into the same
        dataset first)."""
        manifest = figures.figure_manifest(6, scale=SCALE)
        with ExperimentRunner() as runner:
            run_manifest(manifest, runner, dataset=warm)
        imperative = figures.figure8(scale=SCALE)
        view = figures.figure8(scale=SCALE, dataset=warm)
        assert deep_equal(imperative, view)

    def test_sweep_accepts_dataset(self, warm):
        from repro.analysis.sweep import VersionSweep
        from repro.arch import ARM
        from repro.core import get_benchmark
        from repro.platform import VEXPRESS

        sweep = VersionSweep(ARM, VEXPRESS, dataset=warm)
        series = sweep.run(get_benchmark("System Call"), iterations=30)
        assert len(series.seconds) == 20
        assert all(s > 0 for s in series.seconds)
