"""Manifest layer tests: validation, identity, expansion, TOML."""

import json

import pytest

from repro.analysis.figures import figure_manifest
from repro.core.suite import SUITE, find_benchmarks, slugify
from repro.exp.manifest import (
    Manifest,
    ManifestError,
    bundled_manifests,
    resolve_manifest,
)
from repro.sim.dbt.versions import QEMU_VERSIONS
from repro.sim.spec import engines_for_arch
from repro.workloads import SPEC_PROXIES


def smoke_payload(**overrides):
    payload = {
        "manifest": {"schema": 1, "name": "t", "seed": 3},
        "runner": {"scale": 0.02},
        "grid": [
            {
                "arch": "arm",
                "platform": "vexpress",
                "engines": ["simit", {"engine": "qemu-dbt", "fields": {"tlb_bits": 7}}],
                "benchmarks": ["tlb-*", "system-call"],
            }
        ],
    }
    payload.update(overrides)
    return payload


class TestValidation:
    def test_loads_and_expands(self):
        manifest = Manifest(smoke_payload())
        jobs = manifest.jobs()
        assert len(jobs) == 6  # 2 engines x 3 benchmarks
        assert {spec.engine_spec.engine for spec in jobs} == {"simit", "qemu-dbt"}
        assert {spec.benchmark.name for spec in jobs} == {
            "TLB Eviction",
            "TLB Flush",
            "System Call",
        }

    def test_missing_manifest_section(self):
        with pytest.raises(ManifestError, match="manifest"):
            Manifest({"grid": []})

    def test_wrong_schema_rejected(self):
        payload = smoke_payload()
        payload["manifest"]["schema"] = 99
        with pytest.raises(ManifestError, match="schema"):
            Manifest(payload)

    def test_unknown_section_rejected(self):
        payload = smoke_payload(extra={"x": 1})
        with pytest.raises(ManifestError, match="extra"):
            Manifest(payload)

    def test_unknown_grid_key_rejected(self):
        payload = smoke_payload()
        payload["grid"][0]["typo"] = 1
        with pytest.raises(ManifestError, match="typo"):
            Manifest(payload)

    def test_unknown_runner_key_rejected(self):
        payload = smoke_payload(runner={"scale": 1.0, "jobs": 4})
        with pytest.raises(ManifestError, match="jobs"):
            Manifest(payload)

    def test_unknown_engine_rejected_at_load(self):
        payload = smoke_payload()
        payload["grid"][0]["engines"] = ["bochs"]
        with pytest.raises(ManifestError, match="bochs"):
            Manifest(payload)

    def test_unknown_benchmark_rejected_at_load(self):
        payload = smoke_payload()
        payload["grid"][0]["benchmarks"] = ["no-such-bench"]
        with pytest.raises(ManifestError, match="no-such-bench"):
            Manifest(payload)

    def test_unknown_engine_field_rejected(self):
        payload = smoke_payload()
        payload["grid"][0]["engines"] = [
            {"engine": "qemu-dbt", "fields": {"tb_size": 1}}
        ]
        with pytest.raises(ManifestError, match="tb_size"):
            Manifest(payload)

    def test_empty_grid_rejected(self):
        with pytest.raises(ManifestError, match="grid"):
            Manifest(smoke_payload(grid=[]))


class TestExpansion:
    def test_iterations_follow_runner_scale(self):
        manifest = Manifest(smoke_payload())
        for spec in manifest.jobs():
            expected = max(1, int(spec.benchmark.default_iterations * 0.02))
            assert spec.iterations == expected

    def test_explicit_iterations_override_scale(self):
        payload = smoke_payload()
        payload["grid"][0]["iterations"] = 5
        assert all(spec.iterations == 5 for spec in Manifest(payload).jobs())

    def test_grid_scale_overrides_runner_scale(self):
        payload = smoke_payload()
        payload["grid"][0]["scale"] = 0.1
        manifest = Manifest(payload)
        for spec in manifest.jobs():
            assert spec.iterations == max(
                1, int(spec.benchmark.default_iterations * 0.1)
            )

    def test_sweep_macro_expands_all_versions(self):
        payload = smoke_payload()
        payload["grid"][0]["engines"] = [{"sweep": "qemu-versions"}]
        payload["grid"][0]["benchmarks"] = ["system-call"]
        jobs = Manifest(payload).jobs()
        assert len(jobs) == len(QEMU_VERSIONS)
        assert all(spec.engine_spec.engine == "qemu-dbt" for spec in jobs)

    def test_suite_and_proxy_macros(self):
        payload = smoke_payload()
        payload["grid"][0]["benchmarks"] = ["suite", "spec-proxies"]
        names = [spec.benchmark.name for spec in Manifest(payload).jobs()]
        assert len(set(names)) == len(SUITE) + len(SPEC_PROXIES)

    def test_benchmark_dedupe_preserves_order(self):
        payload = smoke_payload()
        payload["grid"][0]["engines"] = ["simit"]
        payload["grid"][0]["benchmarks"] = ["tlb-flush", "tlb-*", "tlb-flush"]
        names = [spec.benchmark.name for spec in Manifest(payload).jobs()]
        assert names == ["TLB Flush", "TLB Eviction"]


class TestIdentity:
    def test_manifest_id_stable_across_instances(self):
        assert (
            Manifest(smoke_payload()).manifest_id()
            == Manifest(smoke_payload()).manifest_id()
        )

    def test_manifest_id_changes_with_grid(self):
        payload = smoke_payload()
        payload["grid"][0]["benchmarks"] = ["tlb-flush"]
        assert (
            Manifest(payload).manifest_id()
            != Manifest(smoke_payload()).manifest_id()
        )

    def test_cells_use_structural_fingerprints(self):
        manifest = Manifest(smoke_payload())
        for cell_id, spec in manifest.cells():
            assert cell_id == spec.fingerprint()

    def test_diff(self):
        mine = Manifest(smoke_payload())
        payload = smoke_payload()
        payload["grid"][0]["benchmarks"] = ["tlb-*"]
        theirs = Manifest(payload)
        delta = mine.diff(theirs)
        assert delta["common"] == 4
        assert delta["added"] == []
        assert {cell["benchmark"] for cell in delta["removed"]} == {"System Call"}


class TestSerialization:
    def test_toml_round_trip(self, tmp_path):
        manifest = Manifest(smoke_payload())
        path = tmp_path / "m.toml"
        path.write_text(manifest.to_toml())
        again = Manifest.load(path)
        assert again.manifest_id() == manifest.manifest_id()
        assert [s.fingerprint() for s in again.jobs()] == [
            s.fingerprint() for s in manifest.jobs()
        ]

    def test_json_round_trip(self, tmp_path):
        manifest = Manifest(smoke_payload())
        path = tmp_path / "m.json"
        path.write_text(json.dumps(manifest.to_payload()))
        assert Manifest.load(path).manifest_id() == manifest.manifest_id()

    def test_unparseable_file_is_manifest_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[manifest\n")
        with pytest.raises(ManifestError, match="unparseable"):
            Manifest.load(path)

    def test_missing_file_is_manifest_error(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read"):
            Manifest.load(tmp_path / "nope.toml")


class TestBundled:
    def test_bundled_set(self):
        assert set(bundled_manifests()) == {
            "figure2",
            "figure6",
            "figure7",
            "figure8",
            "smoke",
        }

    @pytest.mark.parametrize("number", [2, 6, 7, 8])
    def test_bundled_figures_match_builders(self, number):
        """The shipped TOML is exactly figure_manifest(n) at scale 0.5:
        same manifest id, hence the same expanded cells."""
        bundled = resolve_manifest("figure%d" % number)
        built = figure_manifest(number, scale=0.5)
        assert bundled.manifest_id() == built.manifest_id()

    def test_figure7_covers_both_arch_columns(self):
        manifest = resolve_manifest("figure7")
        jobs = manifest.jobs()
        assert len(jobs) == len(SUITE) * (
            len(engines_for_arch("arm")) + len(engines_for_arch("x86"))
        )

    def test_resolve_prefers_paths(self, tmp_path):
        path = tmp_path / "figure7"  # a *file* named like a bundled manifest
        path.write_text(Manifest(smoke_payload()).to_toml())
        assert resolve_manifest(str(path)).name == "t"

    def test_resolve_unknown_lists_bundled(self):
        with pytest.raises(ManifestError, match="figure7"):
            resolve_manifest("no-such-manifest")


class TestFindBenchmarks:
    def test_finds_by_slug_and_name(self):
        assert find_benchmarks("tlb-flush")[0].name == "TLB Flush"
        assert find_benchmarks("TLB Flush")[0].name == "TLB Flush"

    def test_glob(self):
        assert {b.name for b in find_benchmarks("tlb-*")} == {
            "TLB Eviction",
            "TLB Flush",
        }

    def test_unknown_raises_keyerror_with_examples(self):
        with pytest.raises(KeyError, match="small-blocks"):
            find_benchmarks("zzz")

    def test_slugify(self):
        assert slugify("TLB Eviction") == "tlb-eviction"
        assert slugify("perlbench") == "perlbench"
