"""Store-concurrency regression tests.

Two lost-update races fixed in the concurrency sweep:

- ``DirectoryStore.fold_totals`` read-modify-wrote ``_totals.json``
  with no mutual exclusion, so concurrent folders (parent + pool
  workers, or several CLI invocations sharing a dataset) could each
  base their write on the same snapshot and silently drop the other's
  counts.  Now an advisory ``fcntl`` lock on a sidecar lockfile
  serialises the fold; the hammer test here drives real processes.
- ``Dataset.append`` was check-then-write, so two writers racing the
  same cell could both "win"; ``put_new`` link-publishes exclusively
  and the loser discards its row.
"""

import multiprocessing
import os
import threading

import pytest

from repro.arch import ARM
from repro.core import get_benchmark
from repro.core.harness import Harness, TimingPolicy
from repro.core.runner import JobSpec
from repro.exp.dataset import Dataset
from repro.platform import VEXPRESS
from repro.sim.spec import spec_for
from repro.storage import TOTALS_FILENAME, TOTALS_LOCKFILE, DirectoryStore

FOLDERS = 8
FOLDS_PER_FOLDER = 40


class JSONStore(DirectoryStore):
    """Minimal concrete store for exercising the base-class machinery."""

    def _read_entry(self, path):
        import json

        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def _write_entry(self, fd, value):
        import json

        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(value, fh, sort_keys=True)


@pytest.fixture(scope="module")
def executed():
    """One real (spec, record) pair to build dataset rows from."""
    harness = Harness(timing=TimingPolicy.MODELED)
    spec = JobSpec(
        get_benchmark("TLB Flush"), spec_for("simit"), ARM, VEXPRESS, iterations=8
    )
    record = harness.execute_benchmark(
        spec.benchmark, spec.engine_spec, spec.arch, spec.platform, iterations=8
    )
    assert record.status == "ok"
    return spec, record


def _hammer_totals(root, folds):
    store = DirectoryStore(root)
    for _ in range(folds):
        store.fold_totals({"hits": 1, "misses": 2, "stores": 1})


class TestFoldTotalsHammer:
    def test_concurrent_processes_lose_no_counts(self, tmp_path):
        root = os.fspath(tmp_path / "store")
        procs = [
            multiprocessing.Process(
                target=_hammer_totals, args=(root, FOLDS_PER_FOLDER)
            )
            for _ in range(FOLDERS)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        totals = DirectoryStore(root).totals()
        expected = FOLDERS * FOLDS_PER_FOLDER
        assert totals["hits"] == expected
        assert totals["misses"] == 2 * expected
        assert totals["stores"] == expected

    def test_concurrent_threads_lose_no_counts(self, tmp_path):
        store = DirectoryStore(os.fspath(tmp_path / "store"))
        threads = [
            threading.Thread(
                target=lambda: [
                    store.fold_totals({"hits": 1}) for _ in range(50)
                ]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert store.totals()["hits"] == 200

    def test_lockfile_is_a_sidecar_not_a_row(self, tmp_path):
        store = DirectoryStore(os.fspath(tmp_path / "store"))
        store.fold_totals({"hits": 1})
        assert os.path.exists(tmp_path / "store" / TOTALS_LOCKFILE)
        assert store.stats()["entries"] == 0  # not counted as an entry

    def test_clear_removes_totals_and_lock(self, tmp_path):
        store = JSONStore(os.fspath(tmp_path / "store"))
        store.put("k" * 8, {"v": 1})
        store.fold_totals({"hits": 1})
        store.clear()
        assert not os.path.exists(tmp_path / "store" / TOTALS_FILENAME)
        assert not os.path.exists(tmp_path / "store" / TOTALS_LOCKFILE)

    def test_empty_delta_writes_nothing(self, tmp_path):
        store = DirectoryStore(os.fspath(tmp_path / "store"))
        store.fold_totals({})
        assert not os.path.exists(tmp_path / "store" / TOTALS_FILENAME)


class TestPutNew:
    def test_first_writer_wins(self, tmp_path):
        store = JSONStore(os.fspath(tmp_path / "store"))
        assert store.put_new("c" * 8, {"v": "first"}) is True
        assert store.put_new("c" * 8, {"v": "second"}) is False
        assert store.get("c" * 8) == {"v": "first"}
        assert store.stores == 1  # loser did not count a store

    def test_no_temp_file_leaks(self, tmp_path):
        store = JSONStore(os.fspath(tmp_path / "store"))
        store.put_new("c" * 8, {"v": 1})
        store.put_new("c" * 8, {"v": 2})
        names = [
            name
            for _dir, _sub, files in os.walk(tmp_path / "store")
            for name in files
        ]
        assert names.count("%s.json" % ("c" * 8)) == 1
        assert all(not name.startswith(".") for name in names)

    def test_racing_appends_store_one_row(self, tmp_path, executed):
        from tests.exp.test_dataset import row_for

        row = row_for(executed)
        dataset = Dataset(os.fspath(tmp_path / "ds"))
        wins = []
        barrier = threading.Barrier(8)

        def append():
            # Bypass any read-side fast path timing by lining every
            # writer up on a barrier first.
            barrier.wait()
            wins.append(dataset.append(dict(row)))

        threads = [threading.Thread(target=append) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert wins.count(True) == 1
        assert wins.count(False) == 7
        assert len(dataset.rows()) == 1
        assert dataset.stores == 1

    def test_append_still_updates_existing_check(self, tmp_path, executed):
        from tests.exp.test_dataset import row_for

        row = row_for(executed)
        dataset = Dataset(os.fspath(tmp_path / "ds"))
        assert dataset.append(row) is True
        assert dataset.append(dict(row, iterations=999)) is False
        stored = dataset.get(row["cell"])
        assert stored["iterations"] == row["iterations"]
