"""Dataset storage and query-grammar tests."""

import json
import os

import pytest

from repro.arch import ARM
from repro.core.harness import Harness, TimingPolicy
from repro.core.runner import JobSpec
from repro.core import get_benchmark
from repro.exp.dataset import DATASET_SCHEMA, Dataset, make_row
from repro.exp.provenance import capture
from repro.exp.query import QueryError, parse_query
from repro.platform import VEXPRESS
from repro.sim.spec import spec_for


@pytest.fixture(scope="module")
def executed():
    """One real (spec, record) pair to build rows from."""
    harness = Harness(timing=TimingPolicy.MODELED)
    spec = JobSpec(
        get_benchmark("TLB Flush"), spec_for("simit"), ARM, VEXPRESS, iterations=8
    )
    record = harness.execute_benchmark(
        spec.benchmark, spec.engine_spec, spec.arch, spec.platform, iterations=8
    )
    assert record.status == "ok"
    return spec, record


def row_for(executed, **overrides):
    spec, record = executed
    row = make_row(
        spec,
        record,
        provenance=capture(seed=1, manifest="m" * 64),
        manifest="m" * 64,
    )
    row.update(overrides)
    return row


class TestRows:
    def test_make_row_shape(self, executed):
        spec, record = executed
        row = make_row(spec, record)
        assert row["schema"] == DATASET_SCHEMA
        assert row["cell"] == spec.fingerprint()
        assert row["benchmark"] == "TLB Flush"
        assert row["bench_slug"] == "tlb-flush"
        assert row["engine"] == "simit"
        assert row["engine_fields"] == {}
        assert row["record"]["status"] == "ok"

    def test_provenance_stamp(self, executed):
        row = row_for(executed)
        stamp = row["provenance"]
        assert stamp["seed"] == 1
        assert stamp["spec_schema"]
        assert "python" in stamp["host"]


class TestDataset:
    def test_append_only(self, executed, tmp_path):
        dataset = Dataset(tmp_path / "ds")
        row = row_for(executed)
        assert dataset.append(row) is True
        mutated = dict(row, iterations=999)
        assert dataset.append(mutated) is False
        assert dataset.rows()[0]["iterations"] == 8  # first write wins

    def test_contains_and_remove(self, executed, tmp_path):
        dataset = Dataset(tmp_path / "ds")
        row = row_for(executed)
        dataset.append(row)
        assert dataset.contains(row["cell"])
        assert dataset.remove(row["cell"]) is True
        assert not dataset.contains(row["cell"])
        assert dataset.remove(row["cell"]) is False

    def test_corrupt_row_quarantined_on_scan(self, executed, tmp_path):
        """Parity with the result cache: corrupt entries are skipped,
        unlinked and counted -- never fatal, never silently ignored."""
        dataset = Dataset(tmp_path / "ds")
        dataset.append(row_for(executed))
        bad = tmp_path / "ds" / "ab" / ("ab" + "0" * 62 + ".json")
        os.makedirs(bad.parent, exist_ok=True)
        bad.write_text("{not json")
        missing = tmp_path / "ds" / "cd" / ("cd" + "0" * 62 + ".json")
        os.makedirs(missing.parent, exist_ok=True)
        missing.write_text(json.dumps({"schema": 1}))  # missing required keys
        rows = dataset.rows()
        assert len(rows) == 1
        assert dataset.quarantined == 2
        assert not bad.exists() and not missing.exists()
        assert dataset.stats()["entries"] == 1

    def test_quarantine_counts_surface_in_totals(self, executed, tmp_path):
        dataset = Dataset(tmp_path / "ds")
        dataset.append(row_for(executed))
        bad = tmp_path / "ds" / "ab" / ("ab" + "0" * 62 + ".json")
        os.makedirs(bad.parent, exist_ok=True)
        bad.write_text("{not json")
        dataset.rows()
        dataset.fold_totals()
        fresh = Dataset(tmp_path / "ds")
        assert fresh.stats()["totals"]["quarantined"] == 1

    def test_rows_sorted_by_cell(self, executed, tmp_path):
        dataset = Dataset(tmp_path / "ds")
        first = row_for(executed)
        second = dict(first, cell="f" * 64)
        third = dict(first, cell="0" * 64)
        for row in (first, second, third):
            dataset.append(row)
        cells = [row["cell"] for row in dataset.rows()]
        assert cells == sorted(cells)


class TestQuery:
    def rows(self, executed):
        base = row_for(executed)
        other = dict(
            base,
            cell="9" * 64,
            benchmark="System Call",
            bench_slug="system-call",
            engine="qemu-dbt",
            engine_fields={"tlb_bits": 7},
            iterations=100,
            status="unsupported",
        )
        return [base, other]

    def match(self, executed, text):
        query = parse_query(text)
        return [row["engine"] for row in self.rows(executed) if query.match(row)]

    def test_empty_matches_all(self, executed):
        assert len(self.match(executed, "")) == 2

    def test_equality_and_glob(self, executed):
        assert self.match(executed, "engine=simit") == ["simit"]
        assert self.match(executed, "bench=tlb-*") == ["simit"]
        assert self.match(executed, "bench=SYSTEM*") == ["qemu-dbt"]

    def test_name_and_slug_both_match(self, executed):
        assert self.match(executed, "bench=tlb-flush") == ["simit"]
        assert self.match(executed, "'bench=TLB Flush'") == ["simit"]

    def test_conjunction(self, executed):
        assert self.match(executed, "engine=* status=ok") == ["simit"]

    def test_negation(self, executed):
        assert self.match(executed, "engine!=simit") == ["qemu-dbt"]

    def test_numeric_comparison(self, executed):
        assert self.match(executed, "iterations>=100") == ["qemu-dbt"]
        assert self.match(executed, "iterations<100") == ["simit"]

    def test_fields_reach_engine_delta(self, executed):
        assert self.match(executed, "fields.tlb_bits=7") == ["qemu-dbt"]
        assert self.match(executed, "fields.tlb_bits=none") == ["simit"]

    def test_prefix_match_on_ids(self, executed):
        rows = self.rows(executed)
        short = rows[0]["cell"][:12]
        query = parse_query("cell=%s" % short)
        assert [row["engine"] for row in rows if query.match(row)] == ["simit"]

    def test_manifest_and_seed_from_provenance(self, executed):
        assert len(self.match(executed, "manifest=mmm")) == 2
        assert len(self.match(executed, "seed=1")) == 2

    def test_unknown_key_is_parse_error(self, executed):
        with pytest.raises(QueryError, match="unknown query key"):
            parse_query("bogus=1")

    def test_malformed_term_is_parse_error(self):
        with pytest.raises(QueryError, match="malformed term"):
            parse_query("enginesimit")

    def test_numeric_op_requires_number(self):
        with pytest.raises(QueryError, match="numeric"):
            parse_query("iterations>=lots")

    def test_two_char_ops_win(self, executed):
        assert self.match(executed, "iterations>=8") == ["simit", "qemu-dbt"]
