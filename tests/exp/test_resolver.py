"""Resumable-execution tests: the dataset-backed runner facade."""

import math

import pytest

from repro.core.harness import Harness, TimingPolicy
from repro.core.runner import ExperimentRunner
from repro.exp import Dataset, DatasetResolver, Manifest, parse_query, run_manifest


def tiny_manifest(**grid_overrides):
    grid = {
        "arch": "arm",
        "platform": "vexpress",
        "engines": ["simit", "qemu-dbt"],
        "benchmarks": ["tlb-*", "system-call"],
    }
    grid.update(grid_overrides)
    return Manifest(
        {
            "manifest": {"schema": 1, "name": "tiny", "seed": 0},
            "runner": {"scale": 0.02},
            "grid": [grid],
        }
    )


def table(results):
    return [
        (r.benchmark, r.simulator, r.status, r.kernel_ns if r.ok else None)
        for r in results
    ]


class TestRunManifest:
    def test_cold_run_executes_and_appends(self, tmp_path):
        dataset = Dataset(tmp_path / "ds")
        with ExperimentRunner() as runner:
            result = run_manifest(tiny_manifest(), runner, dataset=dataset)
        assert result.stats["executed"] == 6
        assert result.stats["from_dataset"] == 0
        assert result.stats["dataset_appended"] == 6
        assert len(dataset.rows()) == 6
        assert result.failures() == []

    def test_warm_run_executes_nothing(self, tmp_path):
        dataset = Dataset(tmp_path / "ds")
        manifest = tiny_manifest()
        with ExperimentRunner() as runner:
            cold = run_manifest(manifest, runner, dataset=dataset)
        with ExperimentRunner() as runner:
            warm = run_manifest(manifest, runner, dataset=dataset)
        assert warm.stats["executed"] == 0
        assert warm.stats["from_dataset"] == 6
        assert all(row["source"] == "dataset" for row in warm.runner.last_jobs)
        assert table(warm.results) == table(cold.results)

    def test_partial_resume_executes_only_missing_cells(self, tmp_path):
        """The resumability contract: delete a subset of rows, re-run,
        and exactly the missing cells execute (checked through the
        runner's per-job source telemetry); the final table is
        bit-identical to the cold run's."""
        dataset = Dataset(tmp_path / "ds")
        manifest = tiny_manifest()
        with ExperimentRunner() as runner:
            cold = run_manifest(manifest, runner, dataset=dataset)
        victims = [
            row["cell"]
            for row in dataset.rows(parse_query("engine=simit bench=tlb-*"))
        ]
        assert len(victims) == 2
        for cell in victims:
            assert dataset.remove(cell)
        with ExperimentRunner() as runner:
            resumed = run_manifest(manifest, runner, dataset=dataset)
        executed = [
            (row["benchmark"], row["engine"])
            for row in resumed.runner.last_jobs
            if row["source"] == "executed"
        ]
        assert sorted(executed) == [
            ("TLB Eviction", "simit"),
            ("TLB Flush", "simit"),
        ]
        assert resumed.stats["executed"] == 2
        assert resumed.stats["from_dataset"] == 4
        assert resumed.stats["dataset_appended"] == 2
        assert table(resumed.results) == table(cold.results)

    def test_manifest_id_stamped_on_rows_and_jobs(self, tmp_path):
        dataset = Dataset(tmp_path / "ds")
        manifest = tiny_manifest()
        with ExperimentRunner() as runner:
            result = run_manifest(manifest, runner, dataset=dataset)
        for row in dataset.rows():
            assert row["manifest"] == manifest.manifest_id()
            assert row["provenance"]["manifest"] == manifest.manifest_id()
            assert row["provenance"]["seed"] == 0
        for job in result.runner.last_jobs:
            assert job["manifest"] == manifest.manifest_id()
            assert job["cell_id"]

    def test_without_dataset_is_plain_runner(self):
        with ExperimentRunner() as runner:
            result = run_manifest(tiny_manifest(), runner)
        assert result.runner is runner
        assert result.stats["executed"] == 6


class TestResolver:
    def test_pricing_variants_share_one_row(self, tmp_path):
        """Specs differing only in META/PRICING fields share a cell:
        the dataset stores one record, and each spec prices it under
        its own cost table -- the sweep's execute-once-price-many."""
        manifest = tiny_manifest(
            engines=[{"sweep": "qemu-versions"}], benchmarks=["system-call"]
        )
        dataset = Dataset(tmp_path / "ds")
        with ExperimentRunner() as runner:
            cold = run_manifest(manifest, runner, dataset=dataset)
        # 20 versions, but only the structural groups hit the dataset.
        assert len(dataset.rows()) == cold.stats["executed"]
        assert cold.stats["executed"] < len(manifest.jobs())
        with ExperimentRunner() as runner:
            warm = run_manifest(manifest, runner, dataset=dataset)
        assert warm.stats["executed"] == 0
        assert table(warm.results) == table(cold.results)
        # Different versions genuinely price differently from the same rows.
        seconds = {r.kernel_ns for r in warm.results if r.ok}
        assert len(seconds) > 1

    def test_wallclock_timing_bypasses_dataset(self, tmp_path):
        dataset = Dataset(tmp_path / "ds")
        manifest = tiny_manifest(benchmarks=["tlb-flush"])
        harness = Harness(timing=TimingPolicy.WALLCLOCK)
        with ExperimentRunner(harness=harness) as runner:
            resolver = DatasetResolver(runner, dataset)
            resolver.run(manifest.jobs())
            assert resolver.last_stats["from_dataset"] == 0
            assert dataset.rows() == []
            resolver.run(manifest.jobs())
            assert resolver.last_stats["executed"] == 2

    def test_failures_not_appended_and_retry(self, tmp_path):
        """Failure rows never enter the dataset, so failed cells
        re-execute on the next run instead of pinning the failure."""
        dataset = Dataset(tmp_path / "ds")
        manifest = tiny_manifest(
            engines=["gem5"], benchmarks=["nonprivileged-access"]
        )
        with ExperimentRunner(deadline=1e-12, retries=0) as runner:
            resolver = DatasetResolver(runner, dataset)
            results = resolver.run(manifest.jobs())
        if any(not r.ok for r in results):
            failed_cells = {
                spec.fingerprint()
                for spec, r in zip(manifest.jobs(), results)
                if not r.ok
            }
            for cell in failed_cells:
                assert not dataset.contains(cell)

    def test_duck_types_runner_surface(self, tmp_path):
        from repro.arch import ARM
        from repro.platform import VEXPRESS

        dataset = Dataset(tmp_path / "ds")
        with ExperimentRunner() as runner:
            resolver = DatasetResolver(runner, dataset)
            assert resolver.harness is runner.harness
            assert resolver.failures is runner.failures
            suite_result = resolver.run_suite(
                "simit", ARM, VEXPRESS, scale=0.02
            )
            assert len(list(suite_result)) == 18
            assert resolver.last_stats["jobs"] == 18
            again = resolver.run_suite("simit", ARM, VEXPRESS, scale=0.02)
            assert resolver.last_stats["executed"] == 0
            assert table(list(again)) == table(list(suite_result))

    def test_telemetry_rows_join_dataset_rows(self, tmp_path):
        """Satellite contract: JSONL job rows carry cell_id + manifest,
        so telemetry joins dataset rows by key; dataset-resolved cells
        count under their own breakdown column."""
        from repro.obs.export import breakdown, read_jsonl, write_jsonl

        dataset = Dataset(tmp_path / "ds")
        manifest = tiny_manifest(engines=["simit"], benchmarks=["tlb-*"])
        with ExperimentRunner() as runner:
            run_manifest(manifest, runner, dataset=dataset)
        with ExperimentRunner() as runner:
            warm = run_manifest(manifest, runner, dataset=dataset)
        path = tmp_path / "jobs.jsonl"
        write_jsonl(path, meta={"command": "test"}, jobs=warm.runner.last_jobs)
        jobs = [line for line in read_jsonl(path) if line["type"] == "job"]
        assert len(jobs) == 2
        by_cell = {row["cell"]: row for row in dataset.rows()}
        for job in jobs:
            assert job["source"] == "dataset"
            assert job["manifest"] == manifest.manifest_id()
            joined = by_cell[job["cell_id"]]
            assert joined["benchmark"] == job["benchmark"]
        cells = breakdown(jobs)
        assert all(cell["dataset"] == 1 for cell in cells)
        assert all(cell["executed"] == 0 for cell in cells)

    def test_repeated_specs_collapse(self, tmp_path):
        dataset = Dataset(tmp_path / "ds")
        manifest = tiny_manifest(engines=["simit"], benchmarks=["tlb-flush"])
        specs = manifest.jobs() * 3
        with ExperimentRunner() as runner:
            resolver = DatasetResolver(runner, dataset)
            results = resolver.run(specs)
        assert len(results) == 3
        assert len({id(r) for r in results}) == 3  # distinct result objects
        assert len(dataset.rows()) == 1
        values = {r.kernel_ns for r in results}
        assert len(values) == 1 and not any(math.isnan(v) for v in values)
