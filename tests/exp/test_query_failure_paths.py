"""Regression tests: numeric query terms over messy datasets.

A dataset accumulated across real runs mixes ok rows with rows whose
fields hold strings, nulls, or out-of-float-range ints.  A numeric
comparison against such a row must *skip* it (no match), never raise
and kill the whole query.
"""

import pytest

from repro.core.harness import Harness, TimingPolicy
from repro.core.runner import ExperimentRunner
from repro.exp import Dataset, DatasetResolver, parse_query
from repro.exp.query import QueryError


def _seed_dataset(tmp_path):
    """A small real dataset plus hand-planted pathological rows."""
    dataset = Dataset(tmp_path / "ds")
    from repro.core.runner import JobSpec, resolve_benchmark
    from repro.arch import ARM
    from repro.platform import VEXPRESS
    from repro.sim.spec import spec_for

    with ExperimentRunner(
        harness=Harness(timing=TimingPolicy.MODELED)
    ) as inner:
        runner = DatasetResolver(inner, dataset)
        runner.run(
            [
                JobSpec(
                    resolve_benchmark("System Call"),
                    spec_for("qemu-dbt"),
                    ARM,
                    VEXPRESS,
                    iterations=4,
                )
            ]
        )
    ok_row = dataset.rows()[0]

    # A crashed row (the append path never stores failures, so plant it
    # directly, as a salvage/import tool would).
    crashed = dict(ok_row)
    crashed["cell"] = "deadbeef" * 8
    crashed["status"] = "crashed"
    crashed["iterations"] = "not-a-number"
    crashed["record"] = None
    dataset.put(crashed["cell"], crashed)

    # A row whose engine field holds an int too large for float().
    huge = dict(ok_row)
    huge["cell"] = "feedface" * 8
    huge["engine_fields"] = {"tcache_capacity": 10**400}
    dataset.put(huge["cell"], huge)
    return dataset


class TestNumericTermsOverMixedRows:
    def test_numeric_comparison_skips_non_numeric_cells(self, tmp_path):
        dataset = _seed_dataset(tmp_path)
        # The crashed row's iterations is a string: it must simply not
        # match, while the ok rows still do.
        rows = dataset.rows(parse_query("iterations>=1"))
        assert len(rows) == 2
        assert all(row["status"] == "ok" for row in rows)

    def test_overflowing_int_field_skips_not_raises(self, tmp_path):
        dataset = _seed_dataset(tmp_path)
        # 10**400 overflows float(); the row is skipped, not fatal.
        rows = dataset.rows(parse_query("fields.tcache_capacity<99999"))
        assert rows == []
        # And the rest of a conjunction still works alongside it.
        rows = dataset.rows(parse_query("status=ok iterations<100"))
        assert len(rows) == 2

    def test_numeric_comparison_against_status_strings(self, tmp_path):
        dataset = _seed_dataset(tmp_path)
        # status holds strings in every row; a numeric op over it must
        # return no matches rather than ValueError.
        assert dataset.rows(parse_query("status>=1")) == []

    def test_string_queries_still_find_the_crashed_row(self, tmp_path):
        dataset = _seed_dataset(tmp_path)
        rows = dataset.rows(parse_query("status=crashed"))
        assert len(rows) == 1
        assert rows[0]["iterations"] == "not-a-number"

    def test_non_numeric_rhs_still_rejected_at_parse_time(self):
        with pytest.raises(QueryError):
            parse_query("iterations>=fast")
