"""Platform-description tests."""

import pytest

from repro.errors import MachineError
from repro.platform import PCPLAT, VEXPRESS
from repro.platform.base import MemoryLayout, PlatformDescription

_MB = 1 << 20


def _layout(**overrides):
    fields = dict(
        ram_base=0x0,
        ram_size=64 * _MB,
        vector_base=0x4000,
        code_base=0x8000,
        stack_top=0x0010_0000,
        l1_table=0x0100_0000,
        l2_pool=0x0101_0000,
        data_base=0x0200_0000,
        cold_base=0x0280_0000,
        unmapped_vaddr=0x2000_0000,
    )
    fields.update(overrides)
    return MemoryLayout(**fields)


class TestMemoryLayout:
    def test_valid_layout(self):
        layout = _layout()
        assert layout.code_base == 0x8000

    def test_region_outside_ram_rejected(self):
        with pytest.raises(MachineError):
            _layout(data_base=0x9000_0000)

    def test_l1_alignment_enforced(self):
        with pytest.raises(MachineError):
            _layout(l1_table=0x0100_1000)

    def test_unmapped_vaddr_must_be_outside_ram(self):
        with pytest.raises(MachineError):
            _layout(unmapped_vaddr=0x0010_0000)


class TestPlatformDescription:
    def test_device_windows_must_be_distinct_pages(self):
        with pytest.raises(MachineError):
            PlatformDescription(
                name="bad",
                layout=_layout(),
                uart_base=0xF000_0000,
                testctl_base=0xF000_0000,  # collides with the UART
                safedev_base=0xF000_2000,
                timer_base=0xF000_3000,
                intc_base=0xF000_4000,
            )

    def test_device_region_covers_all_devices(self):
        for platform in (VEXPRESS, PCPLAT):
            base, size = platform.device_region
            for addr in (
                platform.uart_base,
                platform.testctl_base,
                platform.safedev_base,
                platform.timer_base,
                platform.intc_base,
            ):
                assert base <= addr < base + size
            assert base % _MB == 0
            assert size % _MB == 0

    def test_builtin_platforms_differ(self):
        assert VEXPRESS.uart_base != PCPLAT.uart_base
        assert VEXPRESS.swirq_line != PCPLAT.swirq_line
        assert VEXPRESS.layout.code_base != PCPLAT.layout.code_base

    def test_convenience_accessors(self):
        assert VEXPRESS.ram_base == VEXPRESS.layout.ram_base
        assert VEXPRESS.ram_size == VEXPRESS.layout.ram_size

    def test_stack_top_within_first_mapped_megabyte(self):
        """The benchmark runtime maps [ram_base, ram_base+1MiB); the
        stack must live inside it or handler pushes fault (regression
        test for the original pcplat layout bug)."""
        for platform in (VEXPRESS, PCPLAT):
            assert platform.layout.stack_top <= platform.ram_base + _MB
