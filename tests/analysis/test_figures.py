"""Figure-regeneration smoke tests (small scales, shape assertions)."""

import pytest

from repro.analysis import figures
from repro.arch import ARM
from repro.platform import VEXPRESS


@pytest.fixture(scope="module")
def fig7():
    return figures.figure7(scale=0.1)


class TestFigure1:
    def test_columns(self):
        data = figures.figure1()
        assert data["user-mode"]["MMU"].startswith("host")
        assert data["full-system"]["MMU"].startswith("simulated")
        assert "Interrupt controller" in data["full-system"]
        text = figures.render_figure1(data)
        assert "Full-system" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def data(self):
        return figures.figure2(scale=0.4)

    def test_structure(self, data):
        assert len(data["versions"]) == 20
        assert set(data["series"]) == {"sjeng", "mcf", "SPEC (overall)"}
        assert len(data["all_series"]) == 12

    def test_baseline_is_one(self, data):
        for series in data["series"].values():
            assert series[0] == pytest.approx(1.0)

    def test_mcf_declines_more_than_sjeng(self, data):
        assert data["series"]["mcf"][-1] < data["series"]["SPEC (overall)"][-1]
        assert data["series"]["sjeng"][-1] > data["series"]["mcf"][-1]

    def test_overall_declines(self, data):
        assert data["series"]["SPEC (overall)"][-1] < 1.0

    def test_sjeng_peaks_around_2_2(self, data):
        sjeng = dict(zip(data["versions"], data["series"]["sjeng"]))
        assert sjeng["v2.2.1"] == max(data["series"]["sjeng"])

    def test_render(self, data):
        text = figures.render_series(data, title="Fig 2")
        assert "v2.5.0-rc2" in text and "sjeng" in text


class TestFigure3:
    def test_rows_and_density_dominance(self):
        rows = figures.figure3(scale=0.05, workload_scale=0.34)
        assert len(rows) == 18
        for row in rows:
            if row["simbench_density"] is None:
                continue
            assert row["simbench_density"] >= row["spec_density"]
        text = figures.render_figure3(rows)
        assert "Hot Memory Access" in text


class TestFigure4:
    def test_matrix_matches_paper(self):
        matrix = figures.figure4()
        assert matrix["qemu-dbt"]["Execution Model"] == "DBT"
        assert matrix["simit"]["Execution Model"] == "Fast Interpreter"
        assert matrix["gem5"]["Memory Access"] == "Modelled TLB"
        assert matrix["qemu-kvm"]["Undefined Instruction"] == "Hypercall"
        assert matrix["native"]["Interrupts"] == "Direct"
        text = figures.render_figure4(matrix)
        assert "qemu-dbt" in text


class TestFigure5:
    def test_hosts(self):
        hosts = figures.figure5()
        assert set(hosts) == {"arm", "x86"}
        assert "vexpress" in hosts["arm"]["Platform"]


class TestFigure7:
    def test_structure(self, fig7):
        assert set(fig7["seconds"]) == {"arm", "x86"}
        assert set(fig7["seconds"]["arm"]) == {
            "qemu-dbt",
            "simit",
            "gem5",
            "qemu-kvm",
            "native",
        }
        assert set(fig7["seconds"]["x86"]) == {"qemu-dbt", "qemu-kvm", "native"}

    def test_gem5_daggers(self, fig7):
        gem5 = fig7["status"]["arm"]["gem5"]
        assert gem5["External Software Interrupt"] == "unsupported"
        assert gem5["Memory Mapped Device"] == "unsupported"

    def test_x86_nonpriv_dash(self, fig7):
        assert fig7["status"]["x86"]["qemu-dbt"]["Nonprivileged Access"] == "not-applicable"

    def test_code_generation_shape(self, fig7):
        """Figure 7's headline: the interpreter crushes DBT on the Code
        Generation benchmarks; the detailed interpreter is worst."""
        arm = fig7["seconds"]["arm"]
        for bench in ("Small Blocks", "Large Blocks"):
            assert arm["simit"][bench] < arm["qemu-dbt"][bench] < arm["gem5"][bench]

    def test_control_flow_shape(self, fig7):
        arm = fig7["seconds"]["arm"]
        # Chaining gives DBT a clear win on same-page direct branches.
        assert arm["qemu-dbt"]["Intra-Page Direct"] < arm["simit"]["Intra-Page Direct"]
        # Across pages the gap closes (the paper: "not as great as might
        # be expected", since lookups dominate): within 1.6x either way.
        ratio = arm["qemu-dbt"]["Inter-Page Direct"] / arm["simit"]["Inter-Page Direct"]
        assert 1 / 1.6 < ratio < 1.6
        for bench in ("Intra-Page Direct", "Inter-Page Direct"):
            assert arm["simit"][bench] < arm["gem5"][bench]
            # The unstable ARM KVM loses to DBT on control flow.
            assert arm["qemu-dbt"][bench] < arm["qemu-kvm"][bench]

    def test_virtualization_trap_shape(self, fig7):
        arm = fig7["seconds"]["arm"]
        for bench in ("External Software Interrupt", "Memory Mapped Device"):
            assert arm["qemu-kvm"][bench] > 10 * arm["native"][bench]

    def test_hot_memory_shape(self, fig7):
        arm = fig7["seconds"]["arm"]
        assert arm["qemu-dbt"]["Hot Memory Access"] < arm["simit"]["Hot Memory Access"]
        assert arm["gem5"]["Hot Memory Access"] > arm["simit"]["Hot Memory Access"]

    def test_cold_memory_shape(self, fig7):
        """SimIt's simpler MMU makes it faster than DBT on TLB misses."""
        arm = fig7["seconds"]["arm"]
        assert arm["simit"]["Cold Memory Access"] < arm["qemu-dbt"]["Cold Memory Access"]

    def test_x86_native_coproc_quirk(self, fig7):
        x86 = fig7["seconds"]["x86"]
        assert x86["native"]["Coprocessor Access"] > x86["qemu-dbt"]["Coprocessor Access"]

    def test_render(self, fig7):
        text = figures.render_figure7(fig7)
        assert "(dagger)" in text
        assert "ARM guest:" in text


class TestExplanations:
    def test_dbt_vs_interpreter(self, fig7):
        explained = figures.explain_dbt_vs_interpreter(fig7)
        interpreter_wins = {name for name, _r in explained["interpreter_wins"]}
        assert "Small Blocks" in interpreter_wins
        assert "Large Blocks" in interpreter_wins
        dbt_wins = {name for name, _r in explained["dbt_wins"]}
        assert "Hot Memory Access" in dbt_wins

    def test_virtualization_explanation(self, fig7):
        divergences = figures.explain_virtualization(fig7)
        worst_arm = [name for name, _r in divergences["arm"][:3]]
        assert "External Software Interrupt" in worst_arm
        assert "Memory Mapped Device" in worst_arm


class TestFigure6And8:
    @pytest.fixture(scope="class")
    def fig6(self):
        return figures.figure6(ARM, VEXPRESS, scale=0.2)

    def test_fig6_panels(self, fig6):
        assert set(fig6["panels"]) == {
            "Code Generation",
            "Control Flow",
            "Exception Handling",
            "I/O",
            "Memory System",
        }
        # Data fault jump is visible in the Exception panel.
        exceptions = fig6["panels"]["Exception Handling"]
        data_fault = dict(zip(fig6["versions"], exceptions["Data Access Fault"]))
        assert data_fault["v2.5.0-rc0"] > 2.0

    def test_fig6_render(self, fig6):
        text = figures.render_figure6(fig6)
        assert "[Memory System]" in text

    def test_fig8_geomeans(self, fig6):
        fig2 = figures.figure2(scale=0.2)
        fig8 = figures.figure8(figure2_data=fig2, figure6_data=fig6)
        assert set(fig8["series"]) == {"SPEC", "SimBench"}
        assert fig8["series"]["SPEC"][0] == pytest.approx(1.0)
        assert fig8["series"]["SimBench"][0] == pytest.approx(1.0)
        # Both decline overall by the end of the timeline.
        assert fig8["series"]["SPEC"][-1] < 1.0
