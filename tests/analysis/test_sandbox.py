"""Sandbox-detection tests (the paper's future-work suggestion)."""

import pytest

from repro.analysis.sandbox import (
    Fingerprint,
    classify,
    detect,
    detect_registry_engine,
    fingerprint,
)
from repro.arch import ARM
from repro.sim import DBTSimulator, FastInterpreter
from repro.sim.dbt import DBTConfig

EXPECTED = {
    "qemu-dbt": "dbt",
    "simit": "interpreter",
    "gem5": "detailed-simulator",
    "qemu-kvm": "virtualized",
    "native": "native",
}


class TestDetection:
    @pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()))
    def test_every_engine_identified(self, name, expected):
        label, fp = detect_registry_engine(name)
        assert label == expected, fp

    def test_dbt_smc_signature_dominates(self):
        _label, fp = detect_registry_engine("qemu-dbt")
        assert fp.smc_ratio > 10

    def test_kvm_mmio_signature_dominates(self):
        _label, fp = detect_registry_engine("qemu-kvm")
        assert fp.mmio_ratio > 50

    def test_unchained_dbt_still_detected(self):
        """A DBT engine with chaining disabled still betrays itself via
        retranslation cost."""
        config = DBTConfig(chain_enabled=False)
        label, _fp = detect(lambda board: DBTSimulator(board, arch=ARM, config=config))
        assert label == "dbt"

    def test_interpreter_without_decode_cache(self):
        label, _fp = detect(
            lambda board: FastInterpreter(board, arch=ARM, use_decode_cache=False)
        )
        assert label == "interpreter"


class TestClassifier:
    def test_thresholds(self):
        assert classify(Fingerprint(30, 1, 1, 5)) == "dbt"
        assert classify(Fingerprint(1, 1, 90, 30)) == "virtualized"
        assert classify(Fingerprint(1, 1, 1, 2000)) == "detailed-simulator"
        assert classify(Fingerprint(1, 3, 1, 40)) == "interpreter"
        assert classify(Fingerprint(1, 2, 1, 3)) == "native"

    def test_fingerprint_dict(self):
        fp = Fingerprint(1.0, 2.0, 3.0, 4.0)
        assert fp.as_dict() == {
            "smc_ratio": 1.0,
            "trap_ratio": 2.0,
            "mmio_ratio": 3.0,
            "ns_per_insn": 4.0,
        }

    def test_fingerprint_repr(self):
        assert "smc=" in repr(Fingerprint(1, 2, 3, 4))


class TestProbeHygiene:
    def test_fresh_engine_per_probe(self):
        """The factory is invoked once per probe so caches never leak
        between probes."""
        calls = []

        def factory(board):
            engine = FastInterpreter(board, arch=ARM)
            calls.append(engine)
            return engine

        fingerprint(factory)
        # baseline, SMC baseline, SMC, trap, MMIO
        assert len(calls) == 5
