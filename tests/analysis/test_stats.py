"""Statistics helper tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import geomean, speedups_vs_baseline, weighted_geomean_speedup

_POS = st.floats(min_value=0.01, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestGeomean:
    def test_single(self):
        assert geomean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(values=st.lists(_POS, min_size=1, max_size=20))
    def test_bounded_by_min_max(self, values):
        result = geomean(values)
        assert min(values) <= result * (1 + 1e-9)
        assert result <= max(values) * (1 + 1e-9)

    @given(values=st.lists(_POS, min_size=1, max_size=10), factor=_POS)
    def test_scale_invariance(self, values, factor):
        scaled = geomean([v * factor for v in values])
        assert scaled == pytest.approx(geomean(values) * factor, rel=1e-6)


class TestSpeedups:
    def test_baseline_is_one(self):
        speedups = speedups_vs_baseline({"a": 2.0, "b": 1.0}, "a")
        assert speedups["a"] == pytest.approx(1.0)
        assert speedups["b"] == pytest.approx(2.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedups_vs_baseline({"a": 0.0}, "a")


class TestWeightedGeomean:
    def test_overall_rating(self):
        series = {"x": [2.0, 1.0], "y": [4.0, 4.0]}
        result = weighted_geomean_speedup(series)
        assert result[0] == pytest.approx(1.0)
        assert result[1] == pytest.approx(math.sqrt(2.0))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_geomean_speedup({"x": [1.0], "y": [1.0, 2.0]})

    def test_empty(self):
        with pytest.raises(ValueError):
            weighted_geomean_speedup({})
