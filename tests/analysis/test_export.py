"""CSV export tests."""

import csv
import io

import pytest

from repro.analysis.export import (
    density_to_csv,
    figure6_to_csv,
    figure7_to_csv,
    series_to_csv,
)


def _rows(text):
    return list(csv.reader(io.StringIO(text)))


class TestSeriesCsv:
    def test_roundtrip(self):
        data = {"versions": ["a", "b"], "series": {"x": [1.0, 2.0], "y": [3.0, 4.0]}}
        rows = _rows(series_to_csv(data))
        assert rows[0] == ["version", "x", "y"]
        assert rows[1] == ["a", "1.000000", "3.000000"]
        assert rows[2] == ["b", "2.000000", "4.000000"]

    def test_missing_index_rejected(self):
        with pytest.raises(ValueError):
            series_to_csv({"series": {}})


class TestFigure6Csv:
    def test_flattening(self):
        data = {
            "versions": ["v1", "v2"],
            "panels": {"G": {"B": [1.0, 0.5]}},
        }
        rows = _rows(figure6_to_csv(data))
        assert rows[0] == ["group", "benchmark", "version", "speedup"]
        assert rows[1] == ["G", "B", "v1", "1.000000"]
        assert rows[2] == ["G", "B", "v2", "0.500000"]


class TestFigure7Csv:
    def test_status_cells_exported(self):
        data = {
            "seconds": {"arm": {"gem5": {"X": None, "Y": 0.5}}},
            "status": {"arm": {"gem5": {"X": "unsupported", "Y": "ok"}}},
        }
        rows = _rows(figure7_to_csv(data))
        cells = {(r[1], r[2]): r[3] for r in rows[1:]}
        assert cells[("X", "gem5")] == "unsupported"
        assert cells[("Y", "gem5")] == "0.500000000"


class TestDensityCsv:
    def test_none_rendered_empty(self):
        rows_in = [
            {
                "group": "G",
                "benchmark": "B",
                "paper_iterations": 10,
                "iterations": 2,
                "simbench_density": None,
                "spec_density": 1e-5,
            }
        ]
        rows = _rows(density_to_csv(rows_in))
        assert rows[1][4] == ""
        assert rows[1][5] == "1.000e-05"


class TestEndToEnd:
    def test_real_figure_exports(self):
        from repro.analysis import figures

        fig2 = figures.figure2(scale=0.1)
        text = series_to_csv(fig2)
        rows = _rows(text)
        assert len(rows) == 21  # header + 20 versions
        assert rows[0][0] == "version"
