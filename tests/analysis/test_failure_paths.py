"""Regression tests: strict=False failure paths in the analysis layer.

A partially-failed sweep (NaN cells, an all-failed version, a failed
*baseline*) must degrade to marked gaps -- NaN points, ``--`` cells in
rendered tables -- never to ZeroDivisionError, ValueError, or a
poisoned series.
"""

import math

import pytest

from repro.analysis.figures import render_series
from repro.analysis.stats import geomean, weighted_geomean_speedup
from repro.analysis.sweep import SweepSeries

NAN = float("nan")


def series(seconds, name="bench"):
    versions = ["v%d" % index for index in range(len(seconds))]
    return SweepSeries(name, "group", versions, seconds)


class TestSpeedupsWithFailedCells:
    def test_failed_point_is_nan_only_there(self):
        speedups = series([2.0, NAN, 1.0]).speedups()
        assert speedups[0] == 1.0
        assert math.isnan(speedups[1])
        assert speedups[2] == 2.0

    def test_failed_baseline_falls_back_to_first_usable_cell(self):
        # The baseline version crashed: ratios are re-anchored on the
        # first usable cell instead of poisoning the whole series.
        speedups = series([NAN, 4.0, 2.0]).speedups()
        assert math.isnan(speedups[0])
        assert speedups[1] == 1.0
        assert speedups[2] == 2.0

    def test_zero_second_baseline_does_not_divide_by_zero(self):
        speedups = series([0.0, 4.0, 2.0]).speedups()
        assert math.isnan(speedups[0])
        assert speedups[1] == 1.0

    def test_all_failed_series_is_all_nan(self):
        assert all(math.isnan(v) for v in series([NAN, NAN]).speedups())


class TestGeomeanStrictness:
    def test_strict_still_raises(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_non_strict_drops_failed_values(self):
        assert geomean([NAN, 2.0, 8.0], strict=False) == pytest.approx(4.0)
        assert geomean([None, -3.0, 2.0, 8.0], strict=False) == pytest.approx(4.0)

    def test_non_strict_empty_is_nan_not_traceback(self):
        assert math.isnan(geomean([], strict=False))
        assert math.isnan(geomean([NAN, -1.0], strict=False))


class TestWeightedGeomeanSpeedup:
    def test_failed_baseline_cell_does_not_poison_every_ratio(self):
        data = {"a": [NAN, 2.0, 1.0], "b": [4.0, 4.0, 2.0]}
        overall = weighted_geomean_speedup(data, strict=False)
        # Series "a" re-anchors on its first usable cell (2.0).
        assert overall[1] == pytest.approx(1.0)
        assert overall[2] == pytest.approx(2.0)
        # Index 0 only has series "b"'s ratio.
        assert overall[0] == pytest.approx(1.0)

    def test_zero_baseline_cell_does_not_zerodivide(self):
        data = {"a": [0.0, 2.0, 1.0]}
        overall = weighted_geomean_speedup(data, strict=False)
        assert math.isnan(overall[0])
        assert overall[2] == pytest.approx(2.0)

    def test_all_failed_index_is_nan(self):
        data = {"a": [1.0, NAN], "b": [1.0, NAN]}
        overall = weighted_geomean_speedup(data, strict=False)
        assert overall[0] == pytest.approx(1.0)
        assert math.isnan(overall[1])

    def test_strict_mode_unchanged(self):
        with pytest.raises(ZeroDivisionError):
            weighted_geomean_speedup({"a": [1.0, 0.0]})


class TestRenderingGaps:
    def test_nan_cells_render_as_gaps(self):
        data = {
            "versions": ["v1", "v2"],
            "series": {"bench": [1.0, NAN]},
        }
        text = render_series(data, title="Figure 8")
        lines = text.splitlines()
        assert "1.000" in lines[2]
        assert "--" in lines[3]
        assert "nan" not in text
