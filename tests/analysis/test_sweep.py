"""Version-sweep driver tests."""

import pytest

from repro.analysis.sweep import SweepSeries, VersionSweep
from repro.arch import ARM
from repro.core import get_benchmark
from repro.platform import VEXPRESS
from repro.sim.dbt.versions import QEMU_VERSIONS


@pytest.fixture(scope="module")
def sweep():
    return VersionSweep(ARM, VEXPRESS)


class TestSweepSeries:
    def test_speedups_baseline(self):
        series = SweepSeries("x", "g", ["a", "b"], [2.0, 1.0])
        assert series.speedups() == (1.0, 2.0)

    def test_speedups_other_baseline(self):
        series = SweepSeries("x", "g", ["a", "b"], [2.0, 1.0])
        assert series.speedups(baseline_index=1) == (0.5, 1.0)


class TestVersionSweep:
    def test_all_versions_covered(self, sweep):
        series = sweep.run(get_benchmark("System Call"), iterations=30)
        assert series.versions == tuple(QEMU_VERSIONS)
        assert len(series.seconds) == 20
        assert all(s > 0 for s in series.seconds)

    def test_structural_groups_share_runs(self, sweep):
        """Only two structural configurations exist in the timeline
        (v1.x with the small TLB, v2.x with the large one), so the sweep
        needs only two real executions."""
        groups = sweep._structural_groups()
        assert len(groups) == 2
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [3, 17]

    def test_exception_benchmark_declines(self, sweep):
        series = sweep.run(get_benchmark("System Call"), iterations=30)
        speedups = series.speedups()
        # Syscall handling regresses markedly by v2.5 (paper Figure 6).
        assert speedups[-1] < 0.75

    def test_data_fault_jumps_at_2_5(self, sweep):
        series = sweep.run(get_benchmark("Data Access Fault"), iterations=30)
        speedups = dict(zip(series.versions, series.speedups()))
        assert speedups["v2.5.0-rc0"] > 2.0 * speedups["v2.4.1"]

    def test_tlb_flush_improves(self, sweep):
        series = sweep.run(get_benchmark("TLB Flush"), iterations=30)
        speedups = series.speedups()
        assert speedups[-1] > 1.5

    def test_control_flow_declines(self, sweep):
        series = sweep.run(get_benchmark("Inter-Page Direct"), iterations=30)
        speedups = series.speedups()
        assert speedups[-1] < 0.85
        # And the decline is monotonic from v2.1.0 on.
        tail = speedups[6:]
        assert all(a >= b - 1e-9 for a, b in zip(tail, tail[1:]))

    def test_run_many(self, sweep):
        result = sweep.run_many(
            [get_benchmark("System Call"), get_benchmark("TLB Flush")], iterations=10
        )
        assert set(result) == {"System Call", "TLB Flush"}
