"""Report-generation tests."""

import pytest

from repro.analysis.report import generate_report, write_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report(scale=0.1, timestamp="2026-07-06T00:00:00")


class TestReport:
    def test_contains_every_section(self, report_text):
        for heading in (
            "# SimBench reproduction report",
            "## Figure 4",
            "## Figure 7",
            "## Figure 2",
            "## Figure 6",
            "## Figure 8",
            "## Figure 3",
            "## Contribution 3",
            "Section III-B.1",
            "Section III-B.2",
        ):
            assert heading in report_text

    def test_timestamp_injected(self, report_text):
        assert "2026-07-06T00:00:00" in report_text

    def test_daggers_and_dashes_present(self, report_text):
        assert "(dagger)" in report_text

    def test_write_report(self, tmp_path, report_text):
        path = write_report(tmp_path / "r.md", scale=0.05)
        assert path.exists()
        assert path.read_text().startswith("# SimBench reproduction report")


class TestRepeatedRuns:
    def test_summary_statistics(self):
        from repro.arch import ARM
        from repro.core import Harness, get_benchmark
        from repro.platform import VEXPRESS

        harness = Harness()
        results, summary = harness.run_benchmark_repeated(
            get_benchmark("System Call"), "simit", ARM, VEXPRESS,
            repeats=3, iterations=20,
        )
        assert len(results) == 3
        assert summary["repeats"] == 3
        # Modeled timing is deterministic: zero spread.
        assert summary["stdev_ns"] == 0.0
        assert summary["median_ns"] == results[0].kernel_ns

    def test_invalid_repeats(self):
        from repro.arch import ARM
        from repro.core import Harness, get_benchmark
        from repro.platform import VEXPRESS

        harness = Harness()
        with pytest.raises(ValueError):
            harness.run_benchmark_repeated(
                get_benchmark("System Call"), "simit", ARM, VEXPRESS, repeats=0
            )

    def test_failed_runs_summarised_as_none(self):
        from repro.arch import X86
        from repro.core import Harness, get_benchmark
        from repro.platform import PCPLAT

        harness = Harness()
        results, summary = harness.run_benchmark_repeated(
            get_benchmark("Nonprivileged Access"), "simit", X86, PCPLAT, repeats=2
        )
        assert summary is None
        assert all(res.status == "not-applicable" for res in results)
