"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_simulator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--sim", "bochs"])


class TestListCommand:
    def test_lists_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Small Blocks" in out
        assert "qemu-dbt" in out
        assert "v2.5.0-rc2" in out
        assert "mcf" in out


class TestEnginesCommand:
    def test_describes_registry_with_features(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ("qemu-dbt", "simit", "gem5", "qemu-kvm", "native"):
            assert name in out
        assert "structural options" in out
        assert "pricing options" in out
        assert "Execution Model" in out  # Figure 4 feature rows

    def test_no_features_flag(self, capsys):
        assert main(["engines", "--no-features"]) == 0
        out = capsys.readouterr().out
        assert "structural options" in out
        assert "Execution Model" not in out


class TestEngineOptions:
    def test_engine_opt_configures_spec(self, capsys):
        assert main([
            "run", "System Call", "--sim", "simit",
            "--engine-opt", "tlb_capacity=16",
            "--engine-opt", "asid_tagged=true",
            "--iterations", "20",
        ]) == 0
        assert "System Call" in capsys.readouterr().out

    def test_unknown_engine_opt_exits_2(self, capsys):
        code = main([
            "run", "System Call", "--sim", "simit",
            "--engine-opt", "bogus=1",
        ])
        assert code == 2
        assert "unknown engine option" in capsys.readouterr().err

    def test_malformed_engine_opt_exits_2(self, capsys):
        code = main([
            "run", "System Call", "--sim", "simit",
            "--engine-opt", "tlb_capacity",
        ])
        assert code == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    @pytest.mark.parametrize("raw", ["nan", "inf", "-inf", "Infinity", "1e999"])
    def test_non_finite_engine_opt_exits_2(self, raw, capsys):
        code = main([
            "run", "System Call", "--sim", "simit",
            "--engine-opt", "tlb_capacity=%s" % raw,
        ])
        assert code == 2
        assert "non-finite" in capsys.readouterr().err


class TestRunCommand:
    def test_run_benchmark(self, capsys):
        assert main(["run", "System Call", "--sim", "simit", "--iterations", "50"]) == 0
        out = capsys.readouterr().out
        assert "System Call" in out
        assert "50 iterations" in out
        assert "50,000,000" in out  # the paper's count is reported too

    def test_not_applicable_is_reported(self, capsys):
        code = main(["run", "Nonprivileged Access", "--sim", "simit", "--arch", "x86"])
        assert code == 0
        assert "not-applicable" in capsys.readouterr().out

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["run", "Bogus Benchmark"])

    def test_wallclock_timing(self, capsys):
        assert main([
            "run", "System Call", "--sim", "simit",
            "--iterations", "20", "--timing", "wallclock",
        ]) == 0


class TestSuiteCommand:
    def test_small_suite(self, capsys):
        assert main(["suite", "--sim", "simit", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert out.count("iterations") >= 17


class TestRunnerOptions:
    def test_suite_parallel_with_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["suite", "--sim", "simit", "--scale", "0.05", "--cache-dir", cache_dir]
        assert main(args + ["--jobs", "2"]) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        captured = capsys.readouterr()
        assert captured.out == cold  # warm run reproduces the cold run
        assert "cache hits" in captured.err

    def test_fault_knobs_accepted_on_clean_run(self, capsys):
        # --deadline/--retries/--keep-going parse and a clean grid
        # still exits 0 with no failure summary.
        args = ["suite", "--sim", "simit", "--scale", "0.05",
                "--deadline", "60", "--retries", "2", "--keep-going"]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "cell(s) failed" not in captured.err

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["suite", "--sim", "simit", "--scale", "0.05",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries: 18" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 18" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out


class TestManifestCommand:
    def _write_tiny(self, tmp_path):
        from repro.exp import Manifest

        manifest = Manifest(
            {
                "manifest": {"schema": 1, "name": "cli-tiny", "seed": 0},
                "runner": {"scale": 0.02},
                "grid": [
                    {
                        "arch": "arm",
                        "platform": "vexpress",
                        "engines": ["simit"],
                        "benchmarks": ["tlb-*"],
                    }
                ],
            }
        )
        path = tmp_path / "tiny.toml"
        path.write_text(manifest.to_toml())
        return str(path), manifest

    def test_show_bundled(self, capsys):
        assert main(["manifest", "show", "smoke", "--cells"]) == 0
        out = capsys.readouterr().out
        assert "manifest smoke" in out
        assert "TLB Flush" in out

    def test_run_twice_second_executes_nothing(self, tmp_path, capsys):
        path, _ = self._write_tiny(tmp_path)
        dataset_dir = str(tmp_path / "ds")
        args = ["manifest", "run", path, "--dataset-dir", dataset_dir]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "2 executed" in cold.err
        assert main(args) == 0
        warm = capsys.readouterr()
        assert "0 executed" in warm.err
        assert "2 from dataset" in warm.err
        # Result tables (stdout) diff clean between cold and warm runs.
        assert warm.out == cold.out

    def test_diff(self, capsys):
        assert main(["manifest", "diff", "smoke", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "0 common cell(s)" in out
        assert "only in figure7" in out

    def test_diff_needs_two(self, capsys):
        assert main(["manifest", "diff", "smoke"]) == 2
        assert "two manifests" in capsys.readouterr().err

    def test_unknown_manifest_exits_2(self, capsys):
        assert main(["manifest", "show", "no-such"]) == 2
        assert "bundled" in capsys.readouterr().err


class TestQueryCommand:
    def _populate(self, tmp_path, capsys):
        dataset_dir = str(tmp_path / "ds")
        manifest_path, manifest = TestManifestCommand()._write_tiny(tmp_path)
        assert main(["manifest", "run", manifest_path,
                     "--dataset-dir", dataset_dir]) == 0
        capsys.readouterr()
        return dataset_dir

    def test_query_matches(self, tmp_path, capsys):
        dataset_dir = self._populate(tmp_path, capsys)
        assert main(["query", "engine=simit", "bench=tlb-*",
                     "--dataset-dir", dataset_dir]) == 0
        captured = capsys.readouterr()
        assert "TLB Flush" in captured.out
        assert "2 row(s)" in captured.err

    def test_query_no_match_exits_1(self, tmp_path, capsys):
        dataset_dir = self._populate(tmp_path, capsys)
        assert main(["query", "engine=gem5", "--dataset-dir", dataset_dir]) == 1
        assert "0 row(s)" in capsys.readouterr().err

    def test_query_parse_error_exits_2(self, tmp_path, capsys):
        assert main(["query", "bogus=1",
                     "--dataset-dir", str(tmp_path / "ds")]) == 2
        assert "unknown query key" in capsys.readouterr().err

    def test_cache_stats_covers_dataset(self, tmp_path, capsys):
        dataset_dir = self._populate(tmp_path, capsys)
        assert main(["cache", "stats", "--dataset-dir", dataset_dir]) == 0
        out = capsys.readouterr().out
        assert "dataset %s" % dataset_dir in out
        assert "entries: 2" in out
        assert "quarantined" in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path / "nope"),
                     "--dataset-dir", dataset_dir]) == 0
        assert "removed 2 dataset rows" in capsys.readouterr().out

    def test_suite_with_dataset_dir(self, tmp_path, capsys):
        dataset_dir = str(tmp_path / "ds")
        args = ["suite", "--sim", "simit", "--scale", "0.05",
                "--dataset-dir", dataset_dir]
        assert main(args) == 0
        first = capsys.readouterr()
        assert main(args) == 0
        second = capsys.readouterr()
        assert "0 executed" in second.err
        assert "from dataset" in second.err
        assert first.out == second.out


class TestFigureCommand:
    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "Full-system" in capsys.readouterr().out

    def test_figure4(self, capsys):
        assert main(["figure", "4"]) == 0
        assert "Block Chaining" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure", "5"]) == 0
        assert "vexpress" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "12"]) == 2


class TestSweepCommand:
    def test_sweep(self, capsys):
        assert main(["sweep", "System Call", "--iterations", "20"]) == 0
        out = capsys.readouterr().out
        assert "v1.7.0" in out and "v2.5.0-rc2" in out


class TestCompareCommand:
    def test_side_by_side(self, capsys):
        assert main(["compare", "--sims", "qemu-dbt,simit", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Ratio simit/qemu-dbt" in out
        assert "Hot Memory Access" in out

    def test_unknown_simulator(self, capsys):
        assert main(["compare", "--sims", "qemu-dbt,bochs", "--scale", "0.05"]) == 2


class TestReportCommand:
    def test_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "R.md"
        assert main(["report", "--output", str(out_path), "--scale", "0.05"]) == 0
        assert out_path.exists()
        assert "# SimBench reproduction report" in out_path.read_text()


class TestDetectCommand:
    def test_detect_interpreter(self, capsys):
        assert main(["detect", "simit"]) == 0
        assert "interpreter" in capsys.readouterr().out


class TestFailureSummary:
    def _failed_runner(self):
        from repro.arch import ARM
        from repro.core import ExperimentRunner, JobSpec
        from repro.platform import VEXPRESS
        from tests.core.test_faults import CrashingBenchmark

        runner = ExperimentRunner()
        runner.run([JobSpec(CrashingBenchmark(), "simit", ARM, VEXPRESS)])
        return runner

    def test_failures_exit_distinct_status_with_summary(self, capsys):
        import argparse

        from repro.cli import EXIT_GRID_FAILURES, _failure_summary

        runner = self._failed_runner()
        code = _failure_summary(argparse.Namespace(keep_going=False), runner)
        assert code == EXIT_GRID_FAILURES == 3
        err = capsys.readouterr().err
        assert "1 cell(s) failed" in err
        assert "Crashing Cell" in err and "crashed" in err

    def test_keep_going_suppresses_failure_exit(self, capsys):
        from repro.cli import _failure_summary

        runner = self._failed_runner()
        code = _failure_summary(
            __import__("argparse").Namespace(keep_going=True), runner
        )
        assert code == 0
        # The summary is still printed; only the exit status changes.
        assert "Crashing Cell" in capsys.readouterr().err


class TestBrokenPipe:
    @pytest.mark.parametrize("stream", ["stdout", "stderr"])
    def test_broken_pipe_exits_quietly(self, stream, monkeypatch):
        # A broken stdout *or* stderr pipe (e.g. `repro suite | head`
        # with the failure summary mid-flight) must exit 0, not
        # traceback.  Real streams are replaced so the handler's
        # devnull redirection cannot touch pytest's capture fds (their
        # fileno() raising exercises the handler's degraded path).
        import io
        import sys as _sys

        import repro.cli as cli

        def _boom(_args):
            raise BrokenPipeError("broken %s" % stream)

        monkeypatch.setitem(cli._COMMANDS, "list", _boom)
        monkeypatch.setattr(_sys, "stdout", io.StringIO())
        monkeypatch.setattr(_sys, "stderr", io.StringIO())
        assert main(["list"]) == 0


class TestServeCommands:
    def test_submit_without_daemon_exits_1(self, tmp_path, capsys):
        sock = str(tmp_path / "nothing.sock")
        assert main(["submit", "smoke", "--socket", sock]) == 1
        assert "no daemon" in capsys.readouterr().err

    def test_status_without_daemon_exits_1(self, tmp_path, capsys):
        sock = str(tmp_path / "nothing.sock")
        assert main(["status", "--socket", sock]) == 1
        assert "no daemon" in capsys.readouterr().err

    def test_submit_needs_a_manifest_or_adhoc(self, tmp_path, capsys):
        sock = str(tmp_path / "nothing.sock")
        assert main(["submit", "--socket", sock]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_bad_tenant_weight_exits_2(self, tmp_path, capsys):
        assert (
            main(
                [
                    "serve",
                    "--socket",
                    str(tmp_path / "s.sock"),
                    "--tenant-weight",
                    "broken",
                ]
            )
            == 2
        )
        assert "TENANT=WEIGHT" in capsys.readouterr().err

    def test_submit_and_wait_against_a_live_service(self, tmp_path, capsys):
        from repro.serve import ExperimentService

        sock = str(tmp_path / "serve.sock")
        with ExperimentService(
            socket_path=sock, dataset_dir=str(tmp_path / "ds")
        ).start():
            assert (
                main(
                    [
                        "submit",
                        "--adhoc",
                        "--sims",
                        "simit",
                        "--benchmarks",
                        "system-call",
                        "--iterations",
                        "4",
                        "--wait",
                        "--timeout",
                        "60",
                        "--socket",
                        sock,
                    ]
                )
                == 0
            )
            captured = capsys.readouterr()
            assert "submitted j0001" in captured.err
            assert "j0001" in captured.out
            assert main(["status", "--socket", sock]) == 0
            assert "done" in capsys.readouterr().out
            assert main(["wait", "j0001", "--rows", "--socket", sock]) == 0
            out = capsys.readouterr().out
            assert "j0001" in out
            assert "System Call" in out
