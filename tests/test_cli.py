"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_simulator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--sim", "bochs"])


class TestListCommand:
    def test_lists_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Small Blocks" in out
        assert "qemu-dbt" in out
        assert "v2.5.0-rc2" in out
        assert "mcf" in out


class TestEnginesCommand:
    def test_describes_registry_with_features(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ("qemu-dbt", "simit", "gem5", "qemu-kvm", "native"):
            assert name in out
        assert "structural options" in out
        assert "pricing options" in out
        assert "Execution Model" in out  # Figure 4 feature rows

    def test_no_features_flag(self, capsys):
        assert main(["engines", "--no-features"]) == 0
        out = capsys.readouterr().out
        assert "structural options" in out
        assert "Execution Model" not in out


class TestEngineOptions:
    def test_engine_opt_configures_spec(self, capsys):
        assert main([
            "run", "System Call", "--sim", "simit",
            "--engine-opt", "tlb_capacity=16",
            "--engine-opt", "asid_tagged=true",
            "--iterations", "20",
        ]) == 0
        assert "System Call" in capsys.readouterr().out

    def test_unknown_engine_opt_exits_2(self, capsys):
        code = main([
            "run", "System Call", "--sim", "simit",
            "--engine-opt", "bogus=1",
        ])
        assert code == 2
        assert "unknown engine option" in capsys.readouterr().err

    def test_malformed_engine_opt_exits_2(self, capsys):
        code = main([
            "run", "System Call", "--sim", "simit",
            "--engine-opt", "tlb_capacity",
        ])
        assert code == 2
        assert "KEY=VALUE" in capsys.readouterr().err


class TestRunCommand:
    def test_run_benchmark(self, capsys):
        assert main(["run", "System Call", "--sim", "simit", "--iterations", "50"]) == 0
        out = capsys.readouterr().out
        assert "System Call" in out
        assert "50 iterations" in out
        assert "50,000,000" in out  # the paper's count is reported too

    def test_not_applicable_is_reported(self, capsys):
        code = main(["run", "Nonprivileged Access", "--sim", "simit", "--arch", "x86"])
        assert code == 0
        assert "not-applicable" in capsys.readouterr().out

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["run", "Bogus Benchmark"])

    def test_wallclock_timing(self, capsys):
        assert main([
            "run", "System Call", "--sim", "simit",
            "--iterations", "20", "--timing", "wallclock",
        ]) == 0


class TestSuiteCommand:
    def test_small_suite(self, capsys):
        assert main(["suite", "--sim", "simit", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert out.count("iterations") >= 17


class TestRunnerOptions:
    def test_suite_parallel_with_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["suite", "--sim", "simit", "--scale", "0.05", "--cache-dir", cache_dir]
        assert main(args + ["--jobs", "2"]) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        captured = capsys.readouterr()
        assert captured.out == cold  # warm run reproduces the cold run
        assert "cache hits" in captured.err

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["suite", "--sim", "simit", "--scale", "0.05",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries: 18" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 18" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out


class TestFigureCommand:
    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "Full-system" in capsys.readouterr().out

    def test_figure4(self, capsys):
        assert main(["figure", "4"]) == 0
        assert "Block Chaining" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure", "5"]) == 0
        assert "vexpress" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "12"]) == 2


class TestSweepCommand:
    def test_sweep(self, capsys):
        assert main(["sweep", "System Call", "--iterations", "20"]) == 0
        out = capsys.readouterr().out
        assert "v1.7.0" in out and "v2.5.0-rc2" in out


class TestCompareCommand:
    def test_side_by_side(self, capsys):
        assert main(["compare", "--sims", "qemu-dbt,simit", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Ratio simit/qemu-dbt" in out
        assert "Hot Memory Access" in out

    def test_unknown_simulator(self, capsys):
        assert main(["compare", "--sims", "qemu-dbt,bochs", "--scale", "0.05"]) == 2


class TestReportCommand:
    def test_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "R.md"
        assert main(["report", "--output", str(out_path), "--scale", "0.05"]) == 0
        assert out_path.exists()
        assert "# SimBench reproduction report" in out_path.read_text()


class TestDetectCommand:
    def test_detect_interpreter(self, capsys):
        assert main(["detect", "simit"]) == 0
        assert "interpreter" in capsys.readouterr().out
