"""Harness tests: timing policies, statuses, suite runs."""

import pytest

from repro.arch import ARM
from repro.core import Harness, SUITE, TimingPolicy, get_benchmark
from repro.core.suite import GROUPS, benchmarks_in_group
from repro.platform import VEXPRESS
from repro.sim.dbt.versions import dbt_config_for_version


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestSuiteRegistry:
    def test_eighteen_benchmarks(self):
        assert len(SUITE) == 18

    def test_five_groups(self):
        assert len(GROUPS) == 5
        grouped = sum(len(benchmarks_in_group(group)) for group in GROUPS)
        assert grouped == len(SUITE)

    def test_group_sizes_match_figure3(self):
        sizes = {group: len(benchmarks_in_group(group)) for group in GROUPS}
        assert sizes == {
            "Code Generation": 2,
            "Control Flow": 4,
            "Exception Handling": 5,
            "I/O": 2,
            "Memory System": 5,
        }

    def test_lookup_errors(self):
        with pytest.raises(KeyError):
            get_benchmark("No Such Benchmark")
        with pytest.raises(KeyError):
            benchmarks_in_group("No Such Group")

    def test_paper_iterations_recorded(self):
        # Spot-check Figure 3's iteration column.
        assert get_benchmark("Small Blocks").paper_iterations == 100_000
        assert get_benchmark("Intra-Page Direct").paper_iterations == 500_000_000
        assert get_benchmark("TLB Flush").paper_iterations == 4_000_000


class TestRunBenchmark:
    def test_reports_iterations_and_paper_iterations(self, harness):
        bench = get_benchmark("System Call")
        result = harness.run_benchmark(bench, "simit", ARM, VEXPRESS, iterations=12)
        assert result.iterations == 12
        assert result.paper_iterations == bench.paper_iterations
        assert result.kernel_ns > 0
        assert result.kernel_wall_ns > 0

    def test_modeled_timing_is_deterministic(self, harness):
        bench = get_benchmark("Hot Memory Access")
        first = harness.run_benchmark(bench, "simit", ARM, VEXPRESS, iterations=30)
        second = harness.run_benchmark(bench, "simit", ARM, VEXPRESS, iterations=30)
        assert first.kernel_ns == second.kernel_ns
        assert first.kernel_delta == second.kernel_delta

    def test_wallclock_policy(self):
        harness = Harness(timing=TimingPolicy.WALLCLOCK)
        bench = get_benchmark("Hot Memory Access")
        result = harness.run_benchmark(bench, "simit", ARM, VEXPRESS, iterations=30)
        assert result.kernel_ns == result.kernel_wall_ns

    def test_kernel_scales_with_iterations(self, harness):
        bench = get_benchmark("Undefined Instruction")
        small = harness.run_benchmark(bench, "simit", ARM, VEXPRESS, iterations=10)
        large = harness.run_benchmark(bench, "simit", ARM, VEXPRESS, iterations=100)
        assert large.kernel_ns > 5 * small.kernel_ns

    def test_program_cache_reused(self, harness):
        bench = get_benchmark("System Call")
        first = harness.build_program(bench, ARM, VEXPRESS)
        second = harness.build_program(bench, ARM, VEXPRESS)
        assert first is second

    def test_dbt_config_applied(self, harness):
        bench = get_benchmark("Data Access Fault")
        base = harness.run_benchmark(
            bench, "qemu-dbt", ARM, VEXPRESS, iterations=50,
            dbt_config=dbt_config_for_version("v1.7.0"),
        )
        fast = harness.run_benchmark(
            bench, "qemu-dbt", ARM, VEXPRESS, iterations=50,
            dbt_config=dbt_config_for_version("v2.5.0-rc0"),
        )
        # The data-fault fast path makes this benchmark far faster.
        assert base.kernel_ns > 2 * fast.kernel_ns

    def test_error_status_on_runaway_guest(self):
        harness = Harness(max_insns=2_000)
        bench = get_benchmark("Cold Memory Access")
        result = harness.run_benchmark(bench, "simit", ARM, VEXPRESS, iterations=100000)
        assert result.status == "error"
        assert result.error is not None


class TestRunSuite:
    def test_full_suite(self, harness):
        suite_result = harness.run_suite("simit", ARM, VEXPRESS, scale=0.05)
        assert len(suite_result) == 18
        assert all(r.status == "ok" for r in suite_result)

    def test_scale_floors_at_one(self, harness):
        suite_result = harness.run_suite(
            "simit", ARM, VEXPRESS, benchmarks=[get_benchmark("System Call")], scale=1e-9
        )
        assert suite_result.results[0].iterations == 1

    def test_by_name(self, harness):
        suite_result = harness.run_suite(
            "simit", ARM, VEXPRESS,
            benchmarks=[get_benchmark("System Call"), get_benchmark("TLB Flush")],
            scale=0.05,
        )
        assert set(suite_result.by_name()) == {"System Call", "TLB Flush"}
