"""Operation-density (Figure 3) and performance-prediction tests."""

import pytest

from repro.arch import ARM
from repro.core import Harness, PerformanceModel, get_benchmark
from repro.core.density import density_table, measure_density, workload_density
from repro.core.predict import predict_workloads
from repro.platform import VEXPRESS
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestDensity:
    def test_single_benchmark_density(self, harness):
        bench = get_benchmark("System Call")
        result, density = measure_density(bench, ARM, VEXPRESS, harness=harness, iterations=50)
        assert result.ok
        # One syscall per ~7-instruction iteration.
        assert 0.05 < density < 0.5

    def test_density_table_rows(self, harness):
        rows = density_table(ARM, VEXPRESS, harness=harness, scale=0.05)
        assert len(rows) == 18
        by_name = {row["benchmark"]: row for row in rows}
        # Spot-check magnitudes against Figure 3's ordering.
        hot = by_name["Hot Memory Access"]["simbench_density"]
        cold = by_name["Cold Memory Access"]["simbench_density"]
        assert hot > 0.5  # paper: 0.909
        assert 0.05 < cold < 0.5  # paper: 0.143
        # Every benchmark exercises its operation.
        for row in rows:
            assert row["simbench_density"] is None or row["simbench_density"] > 0

    def test_simbench_density_beats_spec(self, harness):
        """The table's headline claim: for every operation, SimBench's
        density exceeds the application suite's."""
        deltas = []
        for name in ("sjeng", "mcf", "gobmk"):
            result = harness.run_benchmark(get_workload(name), "simit", ARM, VEXPRESS, iterations=2)
            assert result.ok
            deltas.append(result.kernel_delta)
        rows = density_table(ARM, VEXPRESS, workload_deltas=deltas, harness=harness, scale=0.05)
        for row in rows:
            if row["simbench_density"] is None:
                continue
            assert row["simbench_density"] >= row["spec_density"], row

    def test_workload_density_helper(self):
        delta = {"instructions": 100, "syscalls": 3, "loads": 10}
        assert workload_density(("syscalls",), delta) == 0.03
        assert workload_density(("syscalls", "loads"), delta) == 0.13
        assert workload_density(("syscalls",), {"instructions": 0}) == 0.0


class TestPrediction:
    @pytest.fixture(scope="class")
    def model(self, harness):
        suite_result = harness.run_suite("qemu-dbt", ARM, VEXPRESS, scale=0.3)
        return PerformanceModel.fit(suite_result, ARM)

    def test_fit_produces_positive_base(self, model):
        assert model.base_ns_per_insn > 0
        assert model.extra_ns_per_op

    def test_expensive_ops_have_extra_cost(self, model):
        assert model.extra_ns_per_op.get("data_aborts", 0) > 0
        assert model.extra_ns_per_op.get("tlb_flushes", 0) > 0

    def test_prediction_in_right_ballpark(self, harness, model):
        """Predicted vs measured within a factor of ~3 for the proxies
        (the paper itself stresses this is a rough model)."""
        rows = predict_workloads(
            model, harness, [get_workload("sjeng"), get_workload("hmmer")], ARM, VEXPRESS,
            profile_simulator="qemu-dbt",
        )
        assert rows
        for _name, predicted, measured, error in rows:
            assert predicted > 0 and measured > 0
            assert abs(error) < 2.0, rows

    def test_prediction_error_helper(self, model):
        delta = {"instructions": 1000}
        predicted = model.predict_ns(delta)
        assert model.prediction_error(delta, predicted) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            model.prediction_error(delta, 0)

    def test_least_squares_fit_beats_heuristic(self, harness, model):
        suite_result = harness.run_suite("qemu-dbt", ARM, VEXPRESS, scale=0.3)
        lstsq = PerformanceModel.fit_least_squares(suite_result, ARM)
        assert lstsq.base_ns_per_insn >= 0
        workloads = [get_workload("sjeng"), get_workload("mcf"), get_workload("hmmer")]

        def mean_error(m):
            rows = predict_workloads(
                m, harness, workloads, ARM, VEXPRESS, profile_simulator="qemu-dbt"
            )
            return sum(abs(e) for *_x, e in rows) / len(rows)

        assert mean_error(lstsq) < mean_error(model)

    def test_least_squares_needs_enough_rows(self, harness):
        suite_result = harness.run_suite(
            "simit", ARM, VEXPRESS,
            benchmarks=[get_benchmark("System Call")], scale=0.1,
        )
        with pytest.raises(ValueError):
            PerformanceModel.fit_least_squares(suite_result, ARM)

    def test_fit_requires_base_benchmark(self, harness):
        suite_result = harness.run_suite(
            "simit", ARM, VEXPRESS, benchmarks=[get_benchmark("System Call")], scale=0.1
        )
        with pytest.raises(ValueError):
            PerformanceModel.fit(suite_result, ARM)
