"""Extension benchmark tests: the ASID context-switch benchmark."""

import pytest

from repro.arch import ARM, X86
from repro.core import Harness
from repro.core.benchmarks.extensions import (
    EXTENSION_SUITE,
    ContextSwitch,
    FPControlSwitch,
)
from repro.core.suite import SUITE
from repro.platform import PCPLAT, VEXPRESS
from repro.sim.dbt import DBTConfig


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestRegistry:
    def test_extension_suite_is_separate(self):
        names = {bench.name for bench in SUITE}
        for bench in EXTENSION_SUITE:
            assert bench.name not in names
        assert len(SUITE) == 18  # the Figure 3 inventory is untouched


class TestFPControlSwitch:
    @pytest.mark.parametrize(
        "arch,platform", [(ARM, VEXPRESS), (X86, PCPLAT)], ids=["arm", "x86"]
    )
    def test_runs_everywhere(self, harness, arch, platform):
        bench = FPControlSwitch()
        for simulator in ("simit", "qemu-dbt", "native"):
            result = harness.run_benchmark(bench, simulator, arch, platform, iterations=40)
            assert result.status == "ok", (simulator, result.error)
            assert result.operations == 80  # two FPCR writes per iteration

    def test_fpcr_restored_after_run(self, harness):
        from repro.machine import Board
        from repro.sim import FastInterpreter

        bench = FPControlSwitch()
        built = harness.build_program(bench, ARM, VEXPRESS)
        board = Board(VEXPRESS)
        board.load(built.program)
        board.set_iterations(10)
        engine = FastInterpreter(board, arch=ARM)
        result = engine.run(max_insns=1_000_000)
        assert result.halted_ok
        assert board.cops.cp1.fpcr == 0x037F  # the reset/default value

    def test_expensive_on_x86_kvm(self, harness):
        """FP control writes are coprocessor traps on the x86 KVM model."""
        kvm = harness.run_benchmark(
            FPControlSwitch(), "qemu-kvm", X86, PCPLAT, iterations=40
        )
        dbt = harness.run_benchmark(
            FPControlSwitch(), "qemu-dbt", X86, PCPLAT, iterations=40
        )
        assert kvm.kernel_ns > dbt.kernel_ns


class TestContextSwitch:
    @pytest.mark.parametrize(
        "arch,platform", [(ARM, VEXPRESS), (X86, PCPLAT)], ids=["arm", "x86"]
    )
    def test_runs_everywhere(self, harness, arch, platform):
        bench = ContextSwitch()
        for simulator in ("simit", "qemu-dbt", "qemu-kvm", "native"):
            result = harness.run_benchmark(bench, simulator, arch, platform, iterations=30)
            assert result.status == "ok", (simulator, result.error)
            assert result.operations == 60  # 2 switches per iteration

    def test_untagged_interpreter_flushes_per_switch(self, harness):
        bench = ContextSwitch()
        result = harness.run_benchmark(
            bench, "simit", ARM, VEXPRESS, iterations=100,
            sim_kwargs={"asid_tagged": False},
        )
        delta = result.kernel_delta
        # Every access after a switch misses: 2 switches x 4 pages.
        assert delta["tlb_misses"] >= 100 * 2 * ContextSwitch.WORKING_SET_PAGES - 8

    def test_tagged_interpreter_stays_warm(self, harness):
        bench = ContextSwitch()
        result = harness.run_benchmark(
            bench, "simit", ARM, VEXPRESS, iterations=100,
            sim_kwargs={"asid_tagged": True},
        )
        delta = result.kernel_delta
        # Only the first pass under each ASID misses.
        assert delta["tlb_misses"] <= 2 * ContextSwitch.WORKING_SET_PAGES + 4
        assert delta["context_switches"] == 200

    def test_tagging_is_faster(self, harness):
        bench = ContextSwitch()
        untagged = harness.run_benchmark(
            bench, "simit", ARM, VEXPRESS, iterations=100,
            sim_kwargs={"asid_tagged": False},
        )
        tagged = harness.run_benchmark(
            bench, "simit", ARM, VEXPRESS, iterations=100,
            sim_kwargs={"asid_tagged": True},
        )
        assert tagged.kernel_ns < untagged.kernel_ns

    def test_dbt_asid_tagging(self, harness):
        bench = ContextSwitch()
        untagged = harness.run_benchmark(
            bench, "qemu-dbt", ARM, VEXPRESS, iterations=100,
            dbt_config=DBTConfig(asid_tagged=False),
        )
        tagged = harness.run_benchmark(
            bench, "qemu-dbt", ARM, VEXPRESS, iterations=100,
            dbt_config=DBTConfig(asid_tagged=True),
        )
        assert tagged.kernel_delta["tlb_misses"] < untagged.kernel_delta["tlb_misses"]
        assert tagged.kernel_ns < untagged.kernel_ns

    def test_asid_isolation_correctness(self, harness):
        """Entries cached under one ASID must not leak stale physical
        mappings into another (the tagged TLB keys must include the
        ASID)."""
        from repro.isa.assembler import assemble
        from repro.machine import Board
        from repro.sim import FastInterpreter

        # With MMU off the test is about the TLB structure only; use
        # the engine-level ASID switch path with tagged TLB and verify
        # the dtlb holds distinct per-ASID entries after the benchmark.
        bench = ContextSwitch()
        built = harness.build_program(bench, ARM, VEXPRESS)
        board = Board(VEXPRESS)
        board.load(built.program)
        board.set_iterations(5)
        engine = FastInterpreter(board, arch=ARM, asid_tagged=True)
        result = engine.run(max_insns=1_000_000)
        assert result.halted_ok
        assert engine._dtlb.entries_for_asid(1) >= ContextSwitch.WORKING_SET_PAGES
        assert engine._dtlb.entries_for_asid(2) >= ContextSwitch.WORKING_SET_PAGES
