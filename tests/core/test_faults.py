"""Fault-isolation tests: crash containment, deadlines, retries,
serial fallback after worker death, and lossless error records.

The contracts under test:

- a crashing engine/benchmark cell becomes exactly one ``crashed`` row
  (serial and ``jobs=2``) and never aborts the rest of the grid;
- worker death triggers in-parent serial fallback with results still
  delivered in submission order, bit-for-bit equal to a clean serial
  run;
- the per-job wall deadline produces ``timeout`` records, and transient
  failures (timeouts) are retried with counters in ``last_stats``;
- deterministic crashes under MODELED timing are *not* retried;
- error records round-trip losslessly through JSON payloads for every
  status (the pool/cache transport format).
"""

import json
import os
import time

import pytest

from repro.arch import ARM
from repro.core import (
    ExecutionRecord,
    ExperimentRunner,
    Harness,
    JobSpec,
    ResultCache,
    TimingPolicy,
    get_benchmark,
)
from repro.core.benchmark import Benchmark
from repro.core.harness import FAILURE_STATUSES
from repro.errors import (
    DeadlineExceeded,
    EngineCrashError,
    GuestHalted,
    HarnessError,
    UnsupportedFeatureError,
    error_from_payload,
    error_to_payload,
)
from repro.platform import VEXPRESS


def _delegate_build(arch, platform):
    """A real, working guest program (the System Call benchmark's)."""
    return get_benchmark("System Call").build(arch, platform)


class CrashingBenchmark(Benchmark):
    """Raises from inside the harness's execution path -- the stand-in
    for an engine/decoder/MMU bug in one grid cell."""

    name = "Crashing Cell"
    group = "Faults"
    default_iterations = 5

    def build(self, arch, platform):
        raise RuntimeError("deliberate fault-injection boom")


class WorkerKillerBenchmark(Benchmark):
    """Hard-kills the *worker process* (not an exception -- the kind of
    failure ``BrokenProcessPool`` reports), but builds normally when
    executed in-parent, so the serial fallback recovers the cell."""

    name = "Worker Killer"
    group = "Faults"
    default_iterations = 5

    def build(self, arch, platform):
        import repro.core.runner as runner_mod

        if runner_mod._WORKER_HARNESS is not None:  # only inside pool workers
            os._exit(17)
        return _delegate_build(arch, platform)


class SleepyBenchmark(Benchmark):
    """Blows any sub-second deadline on every attempt."""

    name = "Sleepy Cell"
    group = "Faults"
    default_iterations = 5

    def build(self, arch, platform):
        time.sleep(1.0)
        return _delegate_build(arch, platform)


#: Attempt counter for FlakySlowBenchmark, reset per test.  In-parent
#: retries run in this process, so a module global observes them.
_FLAKY_ATTEMPTS = {"count": 0}


class FlakySlowBenchmark(Benchmark):
    """Times out on the first attempt, runs cleanly on the retry."""

    name = "Flaky Slow Cell"
    group = "Faults"
    default_iterations = 5

    def build(self, arch, platform):
        _FLAKY_ATTEMPTS["count"] += 1
        if _FLAKY_ATTEMPTS["count"] == 1:
            time.sleep(1.0)
        return _delegate_build(arch, platform)


def _grid(*benchmarks, engine="simit", iterations=10):
    return [
        JobSpec(benchmark, engine, ARM, VEXPRESS, iterations=iterations)
        for benchmark in benchmarks
    ]


def _ok_benchmarks():
    return [get_benchmark("System Call"), get_benchmark("TLB Flush"),
            get_benchmark("Hot Memory Access")]


def _comparable(results):
    dicts = [res.as_dict() for res in results]
    for entry in dicts:
        entry.pop("kernel_wall_ns")
    return dicts


class TestCrashContainment:
    def test_serial_crash_is_one_row(self):
        runner = ExperimentRunner()
        specs = _grid(CrashingBenchmark(), *_ok_benchmarks())
        results = runner.run(specs)
        assert [res.status for res in results] == ["crashed", "ok", "ok", "ok"]
        crash = results[0]
        assert isinstance(crash.error, EngineCrashError)
        assert crash.error.exc_type == "RuntimeError"
        assert "deliberate fault-injection boom" in crash.error.exc_message
        assert "boom" in crash.error.traceback_summary
        assert runner.last_stats["crashed"] == 1
        assert runner.last_stats["failures"][0]["benchmark"] == "Crashing Cell"

    def test_deterministic_crash_is_not_retried_under_modeled(self):
        runner = ExperimentRunner(retries=3)
        runner.run(_grid(CrashingBenchmark()))
        assert runner.last_stats["crashed"] == 1
        assert runner.last_stats["retried"] == 0

    def test_wallclock_crash_is_retried(self):
        harness = Harness(timing=TimingPolicy.WALLCLOCK)
        runner = ExperimentRunner(harness=harness, retries=2, retry_backoff=0.0)
        runner.run(_grid(CrashingBenchmark()))
        assert runner.last_stats["crashed"] == 1
        assert runner.last_stats["retried"] == 2

    def test_parallel_crash_matches_serial(self):
        specs = lambda: _grid(  # noqa: E731 - tiny local factory
            CrashingBenchmark(), *_ok_benchmarks()
        )
        serial = ExperimentRunner(jobs=1).run(specs())
        parallel = ExperimentRunner(jobs=2).run(specs())
        assert [res.status for res in parallel] == ["crashed", "ok", "ok", "ok"]
        assert _comparable(parallel) == _comparable(serial)

    def test_engine_crash_inside_run_is_contained(self, monkeypatch):
        from repro.sim.interp import FastInterpreter

        def _blow_up(self, max_insns=0):
            raise ZeroDivisionError("decoder exploded")

        monkeypatch.setattr(FastInterpreter, "run", _blow_up)
        results = ExperimentRunner().run(_grid(get_benchmark("System Call")))
        assert results[0].status == "crashed"
        assert results[0].error.exc_type == "ZeroDivisionError"

    def test_suite_result_failures_accessor(self):
        runner = ExperimentRunner()
        suite_result = runner.run_suite(
            "simit", ARM, VEXPRESS,
            benchmarks=[CrashingBenchmark(), get_benchmark("System Call")],
        )
        failures = suite_result.failures()
        assert [res.benchmark for res in failures] == ["Crashing Cell"]
        assert failures[0].status in FAILURE_STATUSES


class TestWorkerDeathFallback:
    def test_worker_death_falls_back_to_serial_in_order(self):
        benchmarks = [WorkerKillerBenchmark()] + _ok_benchmarks()
        serial = ExperimentRunner(jobs=1).run(_grid(*benchmarks))
        runner = ExperimentRunner(jobs=2)
        parallel = runner.run(_grid(*benchmarks))
        # The killer cell is recovered in-parent (where it builds
        # normally), every cell is delivered in submission order, and
        # the merged grid is bit-for-bit the serial one.
        assert [res.benchmark for res in parallel] == [b.name for b in benchmarks]
        assert all(res.ok for res in parallel)
        assert _comparable(parallel) == _comparable(serial)
        assert runner.last_stats["worker_lost"] >= 1


class TestChunkedFaults:
    """The PR 3 guarantees under *batched* dispatch: forcing the whole
    grid into one multi-job chunk must not widen any failure's blast
    radius beyond the offending job."""

    def test_crash_inside_chunk_quarantines_one_job(self):
        benchmarks = [CrashingBenchmark()] + _ok_benchmarks()
        with ExperimentRunner(jobs=2, chunk_size=len(benchmarks)) as runner:
            results = runner.run(_grid(*benchmarks))
            assert [res.status for res in results] == ["crashed", "ok", "ok", "ok"]
            # The crash was contained inside the worker: the chunk came
            # back whole and nothing fell through to the parent.
            assert runner.last_stats["worker_lost"] == 0
            assert runner.last_stats["chunks"] >= 1
            assert runner.last_stats["chunk_splits"] == 0

    def test_timeout_inside_chunk_quarantines_one_job(self):
        with ExperimentRunner(
            jobs=2, deadline=0.15, retries=0, chunk_size=2
        ) as runner:
            results = runner.run(
                _grid(SleepyBenchmark(), get_benchmark("System Call"))
            )
            # Both jobs share one chunk; the worker-side watchdog turns
            # the sleeper into a timeout row without losing its chunk
            # neighbour (the deadline stays per-job under chunking).
            assert [res.status for res in results] == ["timeout", "ok"]
            assert runner.last_stats["worker_lost"] == 0

    def test_worker_death_in_chunk_splits_and_recovers(self):
        benchmarks = [WorkerKillerBenchmark()] + _ok_benchmarks()
        serial = ExperimentRunner(jobs=1).run(_grid(*benchmarks))
        with ExperimentRunner(jobs=2, chunk_size=len(benchmarks)) as runner:
            parallel = runner.run(_grid(*benchmarks))
            # The dying worker takes its whole chunk down; the split
            # round resubmits the lost jobs as singleton chunks, so
            # only the killer cell (plus whatever died with it) falls
            # through to the parent -- and the merged grid is still
            # bit-for-bit the serial one, in submission order.
            assert [res.benchmark for res in parallel] == [
                b.name for b in benchmarks
            ]
            assert all(res.ok for res in parallel)
            assert _comparable(parallel) == _comparable(serial)
            assert runner.last_stats["chunk_splits"] == 1
            assert runner.last_stats["worker_lost"] >= 1


class TestDeadline:
    def test_serial_deadline_yields_timeout_record(self):
        runner = ExperimentRunner(deadline=0.15, retries=0)
        results = runner.run(_grid(SleepyBenchmark(), get_benchmark("System Call")))
        assert [res.status for res in results] == ["timeout", "ok"]
        assert isinstance(results[0].error, DeadlineExceeded)
        assert results[0].error.deadline_s == pytest.approx(0.15)
        assert runner.last_stats["timeout"] == 1

    def test_pool_deadline_yields_timeout_record(self):
        runner = ExperimentRunner(jobs=2, deadline=0.15, retries=0)
        results = runner.run(_grid(SleepyBenchmark(), get_benchmark("System Call")))
        assert [res.status for res in results] == ["timeout", "ok"]
        assert runner.last_stats["timeout"] == 1

    def test_no_deadline_means_no_watchdog(self):
        runner = ExperimentRunner()
        results = runner.run(_grid(get_benchmark("System Call")))
        assert results[0].ok


class TestRetries:
    def test_transient_timeout_recovers_and_counts(self):
        _FLAKY_ATTEMPTS["count"] = 0
        runner = ExperimentRunner(deadline=0.2, retries=1, retry_backoff=0.0)
        results = runner.run(_grid(FlakySlowBenchmark()))
        assert results[0].ok
        assert runner.last_stats["retried"] == 1
        assert runner.last_stats["timeout"] == 0  # final statuses only
        assert _FLAKY_ATTEMPTS["count"] == 2

    def test_retries_exhausted_keeps_timeout(self):
        runner = ExperimentRunner(deadline=0.15, retries=1, retry_backoff=0.0)
        results = runner.run(_grid(SleepyBenchmark()))
        assert results[0].status == "timeout"
        assert runner.last_stats["retried"] == 1
        assert runner.last_stats["timeout"] == 1


class TestErrorRecordPayloads:
    """Every status's cause survives the JSON payload round-trip."""

    def _roundtrip(self, record):
        # Through actual JSON text, as the cache and any remote
        # transport would ship it.
        payload = json.loads(json.dumps(record.to_payload()))
        return ExecutionRecord.from_payload(payload)

    def test_crashed_roundtrip(self):
        record = ExecutionRecord(
            status="crashed",
            error=EngineCrashError("ValueError", "bad tlb index", "  File x.py..."),
        )
        clone = self._roundtrip(record)
        assert clone.status == "crashed"
        assert isinstance(clone.error, EngineCrashError)
        assert clone.error.exc_type == "ValueError"
        assert clone.error.exc_message == "bad tlb index"
        assert clone.error.traceback_summary == "  File x.py..."

    def test_timeout_roundtrip(self):
        clone = self._roundtrip(
            ExecutionRecord(status="timeout", error=DeadlineExceeded(2.5))
        )
        assert isinstance(clone.error, DeadlineExceeded)
        assert clone.error.deadline_s == 2.5

    def test_harness_error_roundtrip(self):
        clone = self._roundtrip(
            ExecutionRecord(status="error", error=HarnessError("phase markers missing"))
        )
        assert isinstance(clone.error, HarnessError)
        assert "phase markers missing" in str(clone.error)

    def test_guest_halted_roundtrip(self):
        clone = self._roundtrip(
            ExecutionRecord(status="error", error=GuestHalted(3))
        )
        assert isinstance(clone.error, GuestHalted)
        assert clone.error.code == 3

    def test_unsupported_roundtrip(self):
        clone = self._roundtrip(
            ExecutionRecord(
                status="unsupported", error=UnsupportedFeatureError("gem5", "testctl")
            )
        )
        assert isinstance(clone.error, UnsupportedFeatureError)
        assert (clone.error.simulator, clone.error.feature) == ("gem5", "testctl")

    def test_ok_record_has_no_error_key(self):
        assert "error" not in ExecutionRecord(status="ok").to_payload()

    def test_legacy_unsupported_key_still_reads(self):
        # Entries written before the lossless-error format.
        record = ExecutionRecord.from_payload({
            "status": "unsupported",
            "unsupported": ["gem5", "testctl"],
            "kernel_delta": {},
            "kernel_wall_ns": 0,
            "total_instructions": 0,
        })
        assert isinstance(record.error, UnsupportedFeatureError)

    def test_unknown_error_class_degrades_to_named_message(self):
        error = error_from_payload({"class": "WeirdVendorError", "message": "zap"})
        assert "WeirdVendorError" in str(error) and "zap" in str(error)

    def test_error_payload_none_passthrough(self):
        assert error_to_payload(None) is None
        assert error_from_payload(None) is None

    def test_crashed_records_survive_the_pool(self):
        # End to end: a crashed record produced in a worker process
        # arrives in the parent with its cause intact.
        results = ExperimentRunner(jobs=2).run(
            _grid(CrashingBenchmark(), get_benchmark("System Call"))
        )
        assert results[0].status == "crashed"
        assert isinstance(results[0].error, EngineCrashError)
        assert "boom" in results[0].error.exc_message


class TestCacheQuarantine:
    def test_corrupt_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = JobSpec("System Call", "simit", ARM, VEXPRESS, iterations=10)
        ExperimentRunner(cache=cache).run([spec])
        path = cache._path(spec.fingerprint())
        with open(path, "w") as fh:
            fh.write("{not json")
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.get(spec.fingerprint()) is None
        # The bad file is gone: the failed parse is paid exactly once.
        assert not os.path.exists(path)
        stats = fresh.stats()
        assert stats["quarantined"] == 1
        assert stats["misses"] == 1
        # The second probe is a plain (cheap) miss, not a re-parse.
        assert fresh.get(spec.fingerprint()) is None
        assert fresh.quarantined == 1

    def test_missing_entry_is_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("ab" + "0" * 62) is None
        assert cache.quarantined == 0
        assert cache.misses == 1

    def test_failure_records_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ExperimentRunner(cache=cache)
        runner.run(_grid(CrashingBenchmark()))
        assert cache.stores == 0
        assert cache.stats()["entries"] == 0


class TestSweepKeepGoing:
    def test_non_strict_sweep_records_failures_as_nan(self):
        from repro.analysis.sweep import VersionSweep

        sweep = VersionSweep(ARM, VEXPRESS)
        series = sweep.run(CrashingBenchmark(), iterations=5, strict=False)
        assert len(series.seconds) == len(series.versions)
        assert all(value != value for value in series.seconds)  # NaN
        assert series.failures
        assert series.failures[0][1] == "crashed"

    def test_strict_sweep_still_raises(self):
        from repro.analysis.sweep import VersionSweep

        sweep = VersionSweep(ARM, VEXPRESS)
        with pytest.raises(RuntimeError, match="crashed"):
            sweep.run(CrashingBenchmark(), iterations=5, strict=True)
