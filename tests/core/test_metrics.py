"""Observability-layer tests: the metrics registry, the worker-merge
protocol, the JSONL exporter, persistent store totals, and the stats/
deadline bugfix regressions from the runner audit.

Contracts under test:

- registry semantics: counters/gauges/phases/histograms record, reset,
  snapshot (sorted, JSON-safe) and merge deterministically; the phase
  timer is a shared no-op when disabled;
- the runner emits one observability row per submitted job (source =
  executed/cache/static/dedup) and merges worker metrics snapshots and
  code-store deltas back into the parent under ``jobs=N``;
- store accounting survives the process boundary: ``_totals.json``
  accumulates across instances/processes and ``repro cache stats``
  reports it;
- ``retried``/``worker_lost`` reset exactly once per run (a crash-once
  engine retried to success leaves ``crashed == 0``, and the next run
  starts from zero);
- a deadline that cannot arm ``SIGALRM`` (off the main thread, or no
  ``setitimer``) degrades to a wall-clock check -- overruns become
  ``timeout`` records, counted as ``runner.deadline_softcheck`` --
  and a pre-existing ``ITIMER_REAL`` is restored with its remaining
  time.
"""

import json
import signal
import threading
import time
import warnings

import pytest

import repro.core.runner as runner_mod
from repro.arch import ARM
from repro.core import (
    ExperimentRunner,
    Harness,
    JobSpec,
    ResultCache,
    TimingPolicy,
    get_benchmark,
)
from repro.core.benchmark import Benchmark
from repro.obs.export import (
    breakdown,
    jsonl_lines,
    read_jsonl,
    render_breakdown,
    render_phases,
    write_jsonl,
)
from repro.obs.metrics import METRICS, Metrics, enabled_scope
from repro.platform import VEXPRESS
from repro.sim.dbt.codestore import CodeStore
from tests.core.test_faults import _grid, _ok_benchmarks


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts from (and leaves behind) a pristine disabled
    process-global registry."""
    METRICS.reset()
    METRICS.enable(False)
    yield
    METRICS.reset()
    METRICS.enable(False)


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter_gauge_record(self):
        reg = Metrics()
        reg.inc("a")
        reg.inc("a", 4)
        reg.set_gauge("g", 7)
        reg.set_gauge("g", 9)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 5}
        assert snap["gauges"] == {"g": 9}

    def test_phase_min_max_total(self):
        reg = Metrics()
        for ns in (30, 10, 20):
            reg.add_phase_ns("p", ns)
        payload = reg.snapshot()["phases"]["p"]
        assert payload == {"count": 3, "total_ns": 60, "min_ns": 10, "max_ns": 30}

    def test_histogram_buckets_power_of_two(self):
        reg = Metrics()
        for value in (0, 1, 2, 3, 1000):
            reg.observe("h", value)
        payload = reg.snapshot()["histograms"]["h"]
        assert payload["count"] == 5
        assert payload["sum"] == 1006
        assert payload["min"] == 0
        assert payload["max"] == 1000
        # bucket index == bit_length: 0 -> 0, 1 -> 1, 2/3 -> 2, 1000 -> 10
        assert payload["buckets"] == {"0": 1, "1": 1, "2": 2, "10": 1}

    def test_phase_timer_records_only_when_enabled(self):
        reg = Metrics(enabled=True)
        with reg.phase("t"):
            pass
        assert reg.snapshot()["phases"]["t"]["count"] == 1
        reg.disable()
        with reg.phase("t"):
            pass
        assert reg.snapshot()["phases"]["t"]["count"] == 1

    def test_disabled_phase_is_shared_noop(self):
        reg = Metrics()
        assert reg.phase("x") is reg.phase("y")  # one shared null timer

    def test_reset_keeps_enabled_flag(self):
        reg = Metrics(enabled=True)
        reg.inc("a")
        reg.reset()
        assert reg.enabled
        assert reg.snapshot()["counters"] == {}

    def test_snapshot_is_json_safe_and_sorted(self):
        reg = Metrics()
        reg.inc("z")
        reg.inc("a")
        reg.add_phase_ns("p", 5)
        reg.observe("h", 3)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert list(snap["counters"]) == ["a", "z"]

    def test_enabled_scope_restores(self):
        assert not METRICS.enabled
        with enabled_scope() as reg:
            assert reg is METRICS
            assert METRICS.enabled
        assert not METRICS.enabled


class TestMerge:
    def test_merge_equals_single_registry(self):
        a, b, together = Metrics(), Metrics(), Metrics()
        for reg in (a, together):
            reg.inc("c", 2)
            reg.add_phase_ns("p", 10)
            reg.observe("h", 4)
        for reg in (b, together):
            reg.inc("c", 3)
            reg.inc("only_b")
            reg.add_phase_ns("p", 50)
            reg.observe("h", 1)
        merged = Metrics()
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        assert merged.snapshot() == together.snapshot()

    def test_merge_survives_json_roundtrip(self):
        src = Metrics()
        src.inc("c")
        src.add_phase_ns("p", 7)
        src.observe("h", 9)
        src.set_gauge("g", 1.5)
        merged = Metrics()
        merged.merge(json.loads(json.dumps(src.snapshot())))
        assert merged.snapshot() == src.snapshot()

    def test_gauge_merge_is_last_write_wins(self):
        merged = Metrics()
        first, second = Metrics(), Metrics()
        first.set_gauge("g", 1)
        second.set_gauge("g", 2)
        merged.merge(first.snapshot())
        merged.merge(second.snapshot())
        assert merged.snapshot()["gauges"]["g"] == 2

    def test_merge_empty_payload_is_noop(self):
        reg = Metrics()
        reg.inc("c")
        before = reg.snapshot()
        reg.merge(None)
        reg.merge({})
        assert reg.snapshot() == before


# ---------------------------------------------------------------------------
# Exporter
# ---------------------------------------------------------------------------


def _sample_rows():
    return [
        {
            "benchmark": "System Call",
            "engine": "simit",
            "arch": "arm",
            "platform": "vexpress",
            "iterations": 10,
            "status": "ok",
            "source": "executed",
            "wall_ns": 1_000_000,
            "queue_wait_ns": 100,
            "attempts": 1,
            "where": "pool",
        },
        {
            "benchmark": "System Call",
            "engine": "simit",
            "arch": "arm",
            "platform": "vexpress",
            "iterations": 10,
            "status": "ok",
            "source": "dedup",
            "wall_ns": 0,
            "queue_wait_ns": 0,
            "attempts": 0,
            "where": None,
        },
        {
            "benchmark": "TLB Flush",
            "engine": "gem5",
            "arch": "arm",
            "platform": "vexpress",
            "iterations": 10,
            "status": "crashed",
            "source": "executed",
            "wall_ns": 2_000_000,
            "queue_wait_ns": 0,
            "attempts": 2,
            "where": "parent",
        },
    ]


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        reg = Metrics()
        reg.inc("runner.retried", 2)
        reg.add_phase_ns("harness.run", 123)
        path = tmp_path / "out.jsonl"
        count = write_jsonl(
            path, meta={"command": "test"}, jobs=_sample_rows(), snapshot=reg.snapshot()
        )
        lines = read_jsonl(path)
        assert count == len(lines) == 1 + 3 + 2
        assert lines[0]["type"] == "meta"
        assert lines[0]["command"] == "test"
        assert lines[0]["schema"] == 1
        jobs = [line for line in lines if line["type"] == "job"]
        assert [job["benchmark"] for job in jobs] == [
            "System Call", "System Call", "TLB Flush",
        ]
        counter = [line for line in lines if line["type"] == "counter"]
        assert counter == [
            {"type": "counter", "name": "runner.retried", "value": 2}
        ]
        phase = [line for line in lines if line["type"] == "phase"][0]
        assert phase["name"] == "harness.run"
        assert phase["total_ns"] == 123

    def test_every_line_is_standalone_json(self):
        for line in jsonl_lines(meta={"x": 1}, jobs=_sample_rows()):
            assert isinstance(json.loads(line), dict)

    def test_breakdown_aggregates_per_cell(self):
        rows = breakdown(_sample_rows())
        assert [(row["benchmark"], row["engine"]) for row in rows] == [
            ("System Call", "simit"),
            ("TLB Flush", "gem5"),
        ]
        first, second = rows
        assert first["jobs"] == 2
        assert first["executed"] == 1
        assert first["dedup"] == 1
        assert first["failed"] == 0
        assert first["wall_ns"] == 1_000_000
        assert second["failed"] == 1

    def test_render_tables_are_text(self):
        table = render_breakdown(breakdown(_sample_rows()))
        assert "System Call" in table and "wall_ms" in table
        reg = Metrics()
        reg.add_phase_ns("p", 1000)
        assert "p" in render_phases(reg.snapshot())


# ---------------------------------------------------------------------------
# Persistent store totals
# ---------------------------------------------------------------------------


class TestStoreTotals:
    def test_fold_accumulates_across_instances(self, tmp_path):
        delta = {"hits": 2, "misses": 1, "stores": 1, "quarantined": 0}
        first = ResultCache(tmp_path / "cache")
        first.fold_totals(delta)
        second = ResultCache(tmp_path / "cache")  # a "new process"
        second.fold_totals(delta)
        assert second.totals() == {
            "hits": 4, "misses": 2, "stores": 2, "quarantined": 0,
        }

    def test_totals_file_is_not_an_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.fold_totals({"hits": 1, "misses": 0, "stores": 0, "quarantined": 0})
        assert cache.stats()["entries"] == 0

    def test_zero_delta_writes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.fold_totals({"hits": 0, "misses": 0, "stores": 0, "quarantined": 0})
        assert not (tmp_path / "cache").exists()

    def test_clear_removes_totals(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.fold_totals({"hits": 1, "misses": 0, "stores": 0, "quarantined": 0})
        cache.clear()
        assert cache.totals() == {
            "hits": 0, "misses": 0, "stores": 0, "quarantined": 0,
        }

    def test_store_traffic_mirrors_into_metrics(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.get("ab" + "0" * 62)
        assert METRICS.counters["resultcache.misses"].value == 1


# ---------------------------------------------------------------------------
# Runner observability: job rows and worker merge
# ---------------------------------------------------------------------------


class TestJobRows:
    def test_sources_executed_dedup_static(self):
        runner = ExperimentRunner()
        bench = get_benchmark("System Call")
        specs = _grid(bench, bench) + [
            # gem5 has no testctl support for this one: decided
            # statically, no guest code runs.
            JobSpec("Memory Mapped Device", "gem5", ARM, VEXPRESS, iterations=5)
        ]
        runner.run(specs)
        rows = runner.last_jobs
        assert [row["source"] for row in rows] == ["executed", "dedup", "static"]
        assert rows[0]["wall_ns"] > 0
        assert rows[0]["attempts"] == 1
        assert rows[1]["wall_ns"] == 0
        assert rows[2]["status"] == "unsupported"

    def test_cache_hits_become_cache_rows(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = lambda: _grid(get_benchmark("System Call"))  # noqa: E731
        ExperimentRunner(cache=cache).run(specs())
        warm = ExperimentRunner(cache=cache)
        warm.run(specs())
        assert [row["source"] for row in warm.last_jobs] == ["cache"]

    def test_jobs_log_accumulates_across_runs(self):
        runner = ExperimentRunner()
        runner.run(_grid(get_benchmark("System Call")))
        runner.run(_grid(get_benchmark("TLB Flush")))
        assert len(runner.last_jobs) == 1
        assert [row["benchmark"] for row in runner.jobs_log] == [
            "System Call", "TLB Flush",
        ]

    def test_pool_rows_report_pool_and_queue_wait(self):
        METRICS.enable()
        runner = ExperimentRunner(jobs=2)
        runner.run(_grid(*_ok_benchmarks()))
        rows = runner.last_jobs
        assert all(row["where"] == "pool" for row in rows)
        assert all(row["wall_ns"] > 0 for row in rows)
        assert all(row["queue_wait_ns"] >= 0 for row in rows)


class TestWorkerMetricsMerge:
    def test_worker_snapshots_merge_into_parent(self):
        METRICS.enable()
        runner = ExperimentRunner(jobs=2)
        runner.run(_grid(*_ok_benchmarks()))
        snap = METRICS.snapshot()
        # Engine/harness phases only happen inside workers here; their
        # presence in the parent snapshot proves the merge.
        assert snap["phases"]["harness.run"]["count"] == 3
        assert snap["phases"]["runner.job_wall"]["count"] == 3
        assert "funccore.decode" in snap["phases"]

    def test_parallel_merge_matches_serial_counts(self):
        METRICS.enable()
        serial = ExperimentRunner(jobs=1)
        serial.run(_grid(*_ok_benchmarks()))
        serial_snap = METRICS.snapshot()
        METRICS.reset()
        parallel = ExperimentRunner(jobs=2)
        parallel.run(_grid(*_ok_benchmarks()))
        parallel_snap = METRICS.snapshot()
        # Counts are deterministic; timings are not.  Compare the
        # deterministic projection of both snapshots, excluding the
        # pool-only dispatch instruments (they only exist under --jobs:
        # queue waits, chunk dispatch/execution phases and the shipped
        # payload-bytes counter).
        pool_only = {
            "runner.queue_wait",
            "runner.dispatch",
            "runner.chunk",
            "runner.payload_bytes",
            "runner.chunk_splits",
        }
        def counts(snap):
            return (
                {
                    name: value
                    for name, value in snap["counters"].items()
                    if name not in pool_only
                },
                {
                    name: phase["count"]
                    for name, phase in snap["phases"].items()
                    if name not in pool_only
                },
            )
        assert counts(parallel_snap) == counts(serial_snap)

    def test_worker_codestore_delta_reaches_totals(self, tmp_path):
        code_dir = tmp_path / "code"
        runner = ExperimentRunner(jobs=2, code_cache_dir=code_dir)
        runner.run(
            [
                JobSpec(bench, "qemu-dbt", ARM, VEXPRESS, iterations=5)
                for bench in _ok_benchmarks()
            ]
        )
        totals = CodeStore(code_dir).totals()
        # Translation happened only inside pool workers, yet the store
        # totals saw it: the delta crossed the process boundary.
        assert totals["stores"] > 0
        assert totals["misses"] > 0

    def test_parent_resultcache_folds_totals(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = lambda: _grid(get_benchmark("System Call"))  # noqa: E731
        runner = ExperimentRunner(cache=cache)
        runner.run(specs())
        assert cache.totals()["stores"] == 1
        runner.run(specs())
        assert cache.totals()["hits"] == 1
        # Folds are incremental: the first run's counters were not
        # double-counted by the second fold.
        assert cache.totals()["stores"] == 1


# ---------------------------------------------------------------------------
# Bugfix regressions: _exec_stats reset semantics
# ---------------------------------------------------------------------------

_CRASH_ONCE = {"count": 0}


class CrashOnceBenchmark(Benchmark):
    """Crashes on the first build, runs cleanly on the retry -- the
    transient-failure shape (in-parent retries run in this process, so
    a module global observes the attempts)."""

    name = "Crash Once Cell"
    group = "Faults"
    default_iterations = 5

    def build(self, arch, platform):
        _CRASH_ONCE["count"] += 1
        if _CRASH_ONCE["count"] == 1:
            raise RuntimeError("transient boom")
        return get_benchmark("System Call").build(arch, platform)


class TestExecStatsReset:
    def test_retried_success_is_not_double_counted(self):
        _CRASH_ONCE["count"] = 0
        harness = Harness(timing=TimingPolicy.WALLCLOCK)  # crashes retriable
        runner = ExperimentRunner(harness=harness, retries=2, retry_backoff=0.0)
        results = runner.run(_grid(CrashOnceBenchmark()))
        assert results[0].ok
        assert _CRASH_ONCE["count"] == 2
        # One retry, which succeeded: final statuses show no crash and
        # the retry is counted exactly once.
        assert runner.last_stats["retried"] == 1
        assert runner.last_stats["crashed"] == 0
        assert runner.last_stats["executed"] == 1
        assert runner.last_jobs[0]["attempts"] == 2
        assert runner.last_jobs[0]["status"] == "ok"

    def test_stats_reset_between_runs_single_source(self):
        _CRASH_ONCE["count"] = 0
        harness = Harness(timing=TimingPolicy.WALLCLOCK)
        runner = ExperimentRunner(harness=harness, retries=2, retry_backoff=0.0)
        runner.run(_grid(CrashOnceBenchmark()))
        assert runner.last_stats["retried"] == 1
        # Second run: the program is built and cached now, nothing
        # crashes -- and the counters start from zero again (no
        # carry-over from the first run).
        runner.run(_grid(CrashOnceBenchmark()))
        assert runner.last_stats["retried"] == 0
        assert runner.last_stats["worker_lost"] == 0
        assert runner.last_stats["crashed"] == 0

    def test_fresh_exec_stats_is_the_single_source(self):
        # ``__init__`` and ``run`` must share one reset definition.
        runner = ExperimentRunner()
        assert runner._exec_stats == ExperimentRunner._fresh_exec_stats()
        assert ExperimentRunner._fresh_exec_stats() == {
            "retried": 0, "worker_lost": 0,
        }

    def test_retry_events_counted_in_metrics(self):
        _CRASH_ONCE["count"] = 0
        harness = Harness(timing=TimingPolicy.WALLCLOCK)
        runner = ExperimentRunner(harness=harness, retries=2, retry_backoff=0.0)
        runner.run(_grid(CrashOnceBenchmark()))
        assert METRICS.counters["runner.retried"].value == 1


# ---------------------------------------------------------------------------
# Bugfix regressions: deadline enforcement surface + itimer restore
# ---------------------------------------------------------------------------


class TestDeadlineSurfacing:
    def test_off_main_thread_soft_checks_and_counts(self):
        out = {}

        def work():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = runner_mod._call_with_deadline(lambda: "ran", 0.5)
                second = runner_mod._call_with_deadline(lambda: "again", 0.5)
            out["values"] = (first, second)
            out["warnings"] = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ]

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        # Jobs inside the deadline pass through untouched, without
        # warning spam; every soft-checked call is counted.
        assert out["values"] == ("ran", "again")
        assert out["warnings"] == []
        assert METRICS.counters["runner.deadline_softcheck"].value == 2

    def test_off_main_thread_overrun_still_times_out(self):
        out = {}

        def work():
            try:
                runner_mod._call_with_deadline(lambda: time.sleep(0.15), 0.05)
            except runner_mod._DeadlineExpired:
                out["expired"] = True

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        # The degraded watchdog cannot interrupt the job, but the
        # overrun still surfaces as a timeout -- never a silent pass.
        assert out.get("expired") is True

    def test_without_setitimer_soft_checks(self, monkeypatch):
        monkeypatch.delattr(signal, "setitimer")
        assert runner_mod._call_with_deadline(lambda: 42, 0.1) == 42
        assert METRICS.counters["runner.deadline_softcheck"].value == 1
        with pytest.raises(runner_mod._DeadlineExpired):
            runner_mod._call_with_deadline(lambda: time.sleep(0.15), 0.05)

    def test_no_deadline_is_not_a_softcheck(self):
        assert runner_mod._call_with_deadline(lambda: 1, None) == 1
        assert runner_mod._call_with_deadline(lambda: 2, 0) == 2
        assert "runner.deadline_softcheck" not in METRICS.counters

    def test_enforced_deadline_still_fires(self):
        with pytest.raises(runner_mod._DeadlineExpired):
            runner_mod._call_with_deadline(lambda: time.sleep(5), 0.1)

    def test_threaded_submission_yields_timeout_records(self):
        """A grid submitted from a worker thread -- the experiment
        service's scheduler shape -- still enforces per-job deadlines
        via the wall-clock degrade (serial path has no pool workers to
        arm SIGALRM for it)."""
        from tests.core.test_faults import SleepyBenchmark

        out = {}

        def work():
            runner = ExperimentRunner(deadline=0.2, retries=0)
            results = runner.run(_grid(SleepyBenchmark()))
            out["statuses"] = [r.status for r in results]
            out["stats"] = dict(runner.last_stats)

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert out["statuses"] == ["timeout"]
        assert out["stats"]["timeout"] == 1
        assert METRICS.counters["runner.deadline_softcheck"].value >= 1


class TestItimerRestore:
    def test_preexisting_itimer_and_handler_survive(self):
        fired = []

        def _outer(signum, frame):
            fired.append(signum)

        previous_handler = signal.signal(signal.SIGALRM, _outer)
        signal.setitimer(signal.ITIMER_REAL, 60.0)
        try:
            assert runner_mod._call_with_deadline(lambda: "ok", 0.5) == "ok"
            remaining, interval = signal.getitimer(signal.ITIMER_REAL)
            # The outer 60s timer is re-armed with (roughly) its
            # remaining time -- not cancelled, not restarted from 60.
            assert 0.0 < remaining <= 60.0
            assert remaining > 55.0
            assert interval == 0.0
            assert signal.getsignal(signal.SIGALRM) is _outer
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
        assert fired == []

    def test_no_outer_timer_leaves_itimer_disarmed(self):
        previous_handler = signal.getsignal(signal.SIGALRM)
        assert runner_mod._call_with_deadline(lambda: "ok", 0.5) == "ok"
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        assert signal.getsignal(signal.SIGALRM) is previous_handler
