"""Batched warm-pool execution tests: chunk planning, adaptive sizing,
compact payloads, pool persistence, and parallel/serial determinism.

Contracts under test:

- chunk planning shards by engine structural key: a chunk never mixes
  keys, covers every pending index exactly once, and preserves
  submission order (groups in first-seen order, members in order);
- adaptive chunk sizing: an explicit ``chunk_size`` wins; with a
  per-job EWMA the size targets ~100ms of worker time per dispatch,
  clamped to a fair per-worker share; without one it falls back to a
  few chunks per worker;
- the wire payload is compact: engine specs are interned per chunk and
  shipped as defaults-stripped deltas, benchmarks by registry name
  (ad-hoc objects by value), and shipped bytes feed the
  ``runner.payload_bytes`` counter;
- the pool is persistent across :meth:`ExperimentRunner.run` calls and
  shuts down on :meth:`close` / context-manager exit;
- chunked parallel execution is bit-for-bit equal to serial on a mixed
  multi-engine grid, whatever the chunk size;
- dispatch observability: ``runner.dispatch``/``runner.chunk`` phase
  timers and the ``runner.chunk_size`` histogram are recorded, and the
  pool-path extras (``chunks``/``chunk_splits``/``payload_bytes``)
  appear in ``last_stats`` only when chunks were actually dispatched.
"""

import pickle

import pytest

from repro.arch import ARM
from repro.core import ExperimentRunner, JobSpec, get_benchmark
from repro.core.benchmark import Benchmark
from repro.obs.metrics import METRICS
from repro.platform import VEXPRESS
from repro.sim.spec import EngineSpec, InterpSpec
from tests.core.test_faults import _comparable, _ok_benchmarks


@pytest.fixture(autouse=True)
def _clean_registry():
    METRICS.reset()
    METRICS.enable(False)
    yield
    METRICS.reset()
    METRICS.enable(False)


class LocalOnlyBenchmark(Benchmark):
    """Registry-unknown benchmark (ships to workers by value)."""

    name = "Local Only Cell"
    group = "Batching"
    default_iterations = 5

    def build(self, arch, platform):
        return get_benchmark("System Call").build(arch, platform)


def _mixed_grid(iterations=10):
    """A grid interleaving three structural keys (two engines plus a
    structurally-distinct variant of one of them)."""
    engines = ["simit", "qemu-dbt", InterpSpec(tlb_capacity=128)]
    specs = []
    for benchmark in _ok_benchmarks():
        for engine in engines:
            specs.append(JobSpec(benchmark, engine, ARM, VEXPRESS, iterations))
    return specs


def _simit_grid(iterations=10):
    return [
        JobSpec(benchmark, "simit", ARM, VEXPRESS, iterations)
        for benchmark in _ok_benchmarks()
    ]


class TestChunkPlanning:
    def test_chunks_never_mix_structural_keys(self):
        runner = ExperimentRunner(jobs=2, chunk_size=2)
        specs = _mixed_grid()
        chunks = runner._plan_chunks(specs)
        for chunk in chunks:
            keys = {specs[index].structural_key() for index in chunk}
            assert len(keys) == 1
        covered = sorted(index for chunk in chunks for index in chunk)
        assert covered == list(range(len(specs)))

    def test_chunks_preserve_submission_order(self):
        # Interleaved keys A,B,A,B,A,B regroup to A-chunks then
        # B-chunks (first-seen order), members in submission order.
        runner = ExperimentRunner(jobs=2, chunk_size=2)
        benchmarks = _ok_benchmarks()
        specs = []
        for benchmark in benchmarks:
            specs.append(JobSpec(benchmark, "simit", ARM, VEXPRESS, 10))
            specs.append(JobSpec(benchmark, "qemu-dbt", ARM, VEXPRESS, 10))
        chunks = runner._plan_chunks(specs)
        assert chunks == [[0, 2], [4], [1, 3], [5]]

    def test_explicit_chunk_size_wins(self):
        runner = ExperimentRunner(jobs=4, chunk_size=7)
        assert runner._auto_chunk_size(100, 4) == 7

    def test_first_run_falls_back_to_share(self):
        runner = ExperimentRunner(jobs=4)
        # No wall-time estimate yet: a few chunks per worker.
        assert runner._auto_chunk_size(144, 4) == 9  # ceil(144 / (4*4))
        assert runner._auto_chunk_size(3, 2) == 1

    def test_ewma_targets_chunk_time(self):
        runner = ExperimentRunner(jobs=4)
        runner._ewma_job_ns = 10_000_000  # 10ms/job -> 10 jobs/chunk
        assert runner._auto_chunk_size(144, 4) == 10
        runner._ewma_job_ns = 1_000_000_000  # slow jobs -> singletons
        assert runner._auto_chunk_size(144, 4) == 1
        runner._ewma_job_ns = 1  # instant jobs -> clamp to fair share
        assert runner._auto_chunk_size(144, 4) == 36

    def test_ewma_learns_from_runs(self):
        runner = ExperimentRunner()
        assert runner._ewma_job_ns is None
        runner.run(_simit_grid())
        assert runner._ewma_job_ns and runner._ewma_job_ns > 0


class TestCompactPayloads:
    def test_delta_payload_strips_defaults(self):
        assert InterpSpec().delta_payload() == {"engine": "simit", "fields": {}}
        spec = InterpSpec(tlb_capacity=128)
        assert spec.delta_payload()["fields"] == {"tlb_capacity": 128}

    def test_delta_payload_roundtrips(self):
        for spec in (InterpSpec(), InterpSpec(tlb_capacity=128, asid_tagged=True)):
            assert EngineSpec.from_payload(spec.delta_payload()) == spec

    def test_chunk_blob_interns_engines_and_ships_names(self):
        runner = ExperimentRunner(jobs=2)
        specs = _simit_grid()
        blob = runner._chunk_blob(specs)
        payload = pickle.loads(blob)
        # One interned engine entry however many jobs reference it, and
        # registry benchmarks travel by name, not by value.
        assert len(payload["engines"]) == 1
        assert len(payload["jobs"]) == len(specs)
        assert all(isinstance(job[0], str) for job in payload["jobs"])
        assert runner._pool_stats["payload_bytes"] == len(blob)

    def test_adhoc_benchmark_ships_by_value(self):
        runner = ExperimentRunner(jobs=2)
        blob = runner._chunk_blob(
            [JobSpec(LocalOnlyBenchmark(), "simit", ARM, VEXPRESS, 5)]
        )
        payload = pickle.loads(blob)
        assert isinstance(payload["jobs"][0][0], LocalOnlyBenchmark)

    def test_adhoc_benchmark_executes_in_pool(self):
        serial = ExperimentRunner(jobs=1).run(
            [JobSpec(LocalOnlyBenchmark(), "simit", ARM, VEXPRESS, 10)]
        )
        with ExperimentRunner(jobs=2, chunk_size=1) as runner:
            parallel = runner.run(
                [
                    JobSpec(LocalOnlyBenchmark(), "simit", ARM, VEXPRESS, 10),
                    JobSpec(get_benchmark("System Call"), "simit", ARM, VEXPRESS, 10),
                ]
            )
            assert parallel[0].ok
            assert _comparable([parallel[0]]) == _comparable(serial)
            assert runner.last_stats["worker_lost"] == 0


class TestPoolPersistence:
    def test_pool_survives_across_runs(self):
        with ExperimentRunner(jobs=2) as runner:
            first = runner.run(_simit_grid())
            pool = runner._pool
            assert pool is not None
            second = runner.run(_simit_grid())
            assert runner._pool is pool  # warm reuse, not a fresh pool
            assert _comparable(first) == _comparable(second)
        assert runner._pool is None

    def test_close_is_idempotent_and_reentrant(self):
        runner = ExperimentRunner(jobs=2)
        runner.run(_simit_grid())
        runner.close()
        assert runner._pool is None
        runner.close()
        # The runner stays usable: the next run warms a new pool.
        results = runner.run(_simit_grid())
        assert all(res.ok for res in results)
        runner.close()


class TestChunkedDeterminism:
    def test_mixed_grid_matches_serial_at_every_chunk_size(self):
        specs = _mixed_grid
        serial = ExperimentRunner(jobs=1).run(specs())
        for chunk_size in (None, 1, 4):
            with ExperimentRunner(jobs=3, chunk_size=chunk_size) as runner:
                parallel = runner.run(specs())
                assert _comparable(parallel) == _comparable(serial)

    def test_dedup_and_chunking_compose(self):
        # Structural repeats dedup to one execution before chunking;
        # the merge still prices every submitted spec.
        specs = _simit_grid() + _simit_grid()
        with ExperimentRunner(jobs=2, chunk_size=2) as runner:
            results = runner.run(specs)
            assert len(results) == len(specs)
            assert runner.last_stats["unique"] == len(specs) // 2
            assert _comparable(results[: len(specs) // 2]) == _comparable(
                results[len(specs) // 2 :]
            )


class TestDispatchObservability:
    def test_dispatch_instruments_recorded(self):
        METRICS.enable()
        with ExperimentRunner(jobs=2, chunk_size=2) as runner:
            runner.run(_mixed_grid())
            snap = METRICS.snapshot()
            assert snap["phases"]["runner.dispatch"]["count"] == runner.last_stats["chunks"]
            assert snap["phases"]["runner.chunk"]["count"] >= 1
            hist = snap["histograms"]["runner.chunk_size"]
            assert hist["count"] == runner.last_stats["chunks"]
            assert hist["max"] <= 2
            assert (
                snap["counters"]["runner.payload_bytes"]
                == runner.last_stats["payload_bytes"]
            )

    def test_serial_run_keeps_legacy_stats_shape(self):
        runner = ExperimentRunner()
        runner.run(_simit_grid())
        for key in ("chunks", "chunk_splits", "payload_bytes", "chunk_size"):
            assert key not in runner.last_stats

    def test_pool_run_reports_chunk_stats(self):
        with ExperimentRunner(jobs=2, chunk_size=2) as runner:
            runner.run(_mixed_grid())
            assert runner.last_stats["chunks"] >= 3
            assert runner.last_stats["chunk_size"] == 2
            assert runner.last_stats["payload_bytes"] > 0
            assert runner.last_stats["chunk_splits"] == 0
