"""ProgramBuilder tests: the three-phase bare-metal protocol."""

import pytest

from repro.arch import ARM, X86
from repro.core.program import PHASE_KERNEL_DONE, PHASE_SETUP_DONE, ProgramBuilder
from repro.machine import Board
from repro.machine.cpu import ExceptionVector
from repro.platform import PCPLAT, VEXPRESS
from repro.sim import FastInterpreter


def build_and_run(builder, platform, iterations=3, max_insns=500_000):
    built = builder.build()
    board = Board(platform)
    board.load(built.program)
    board.set_iterations(iterations)
    engine = FastInterpreter(board, arch=builder.arch)
    result = engine.run(max_insns=max_insns)
    return engine, board, result


@pytest.mark.parametrize(
    "arch,platform", [(ARM, VEXPRESS), (X86, PCPLAT)], ids=["arm", "x86"]
)
class TestThreePhaseProtocol:
    def test_phases_in_order(self, arch, platform):
        builder = ProgramBuilder(arch, platform)
        builder.kernel.emit("    addi r4, r4, 1")
        _engine, board, result = build_and_run(builder, platform, iterations=5)
        assert result.halted_ok
        assert board.testctl.phases_seen == [PHASE_SETUP_DONE, PHASE_KERNEL_DONE]
        assert board.cpu.regs[4] == 5

    def test_zero_iterations_skips_kernel(self, arch, platform):
        builder = ProgramBuilder(arch, platform)
        builder.kernel.emit("    addi r4, r4, 1")
        _engine, board, result = build_and_run(builder, platform, iterations=0)
        assert result.halted_ok
        assert board.cpu.regs[4] == 0
        assert board.testctl.phases_seen == [PHASE_SETUP_DONE, PHASE_KERNEL_DONE]

    def test_setup_and_cleanup_run_once(self, arch, platform):
        builder = ProgramBuilder(arch, platform)
        builder.setup.emit("    addi r11, r11, 1")
        builder.cleanup.emit("    addi r12, r12, 1")
        builder.kernel.emit("    nop")
        _engine, board, result = build_and_run(builder, platform, iterations=4)
        assert result.halted_ok
        assert board.cpu.regs[11] == 1
        assert board.cpu.regs[12] == 1

    def test_mmu_enabled_by_default(self, arch, platform):
        builder = ProgramBuilder(arch, platform)
        builder.kernel.emit("    nop")
        _engine, board, result = build_and_run(builder, platform)
        assert result.halted_ok
        assert board.cp15.mmu_enabled

    def test_mmu_can_be_disabled(self, arch, platform):
        builder = ProgramBuilder(arch, platform, enable_mmu=False)
        builder.kernel.emit("    nop")
        _engine, board, result = build_and_run(builder, platform)
        assert result.halted_ok
        assert not board.cp15.mmu_enabled

    def test_unexpected_exception_halts_with_marker(self, arch, platform):
        builder = ProgramBuilder(arch, platform)
        builder.kernel.emit("    und")  # no handler installed
        _engine, _board, result = build_and_run(builder, platform, iterations=1)
        assert result.halt_code == 0xEE

    def test_vector_override(self, arch, platform):
        builder = ProgramBuilder(arch, platform)
        builder.override_vector(ExceptionVector.UNDEF, ".my_undef")
        builder.kernel.emit("    und")
        builder.handlers.emit(".my_undef:")
        builder.handlers.emit("    addi r9, r9, 1")
        builder.handlers.emit("    sret")
        _engine, board, result = build_and_run(builder, platform, iterations=6)
        assert result.halted_ok
        assert board.cpu.regs[9] == 6

    def test_extra_region_mapped(self, arch, platform):
        layout = platform.layout
        builder = ProgramBuilder(arch, platform)
        builder.add_region(layout.cold_base, layout.cold_base, 0x4000)
        builder.kernel.emit("    li r0, 0x%08x" % layout.cold_base)
        builder.kernel.emit("    ldr r1, [r0, #0x2000]")
        _engine, _board, result = build_and_run(builder, platform)
        assert result.halted_ok

    def test_iterations_visible_to_guest(self, arch, platform):
        builder = ProgramBuilder(arch, platform)
        builder.kernel.emit("    mov r5, r10")  # remaining count
        _engine, board, result = build_and_run(builder, platform, iterations=9)
        assert result.halted_ok
        assert board.cpu.regs[5] == 1  # last iteration sees 1 remaining


class TestBuilderUtilities:
    def test_unique_labels(self):
        builder = ProgramBuilder(ARM, VEXPRESS)
        assert builder.label() != builder.label()

    def test_source_is_recorded(self):
        builder = ProgramBuilder(ARM, VEXPRESS)
        builder.kernel.emit("    nop")
        built = builder.build()
        assert ".kernel_loop:" in built.source
        assert built.arch is ARM
