"""Per-benchmark tests: each of the 18 must run and its tested
operation must be observed at the expected rate."""

import pytest

from repro.arch import ARM, X86
from repro.core import Harness, SUITE, get_benchmark
from repro.platform import PCPLAT, VEXPRESS

ITERATIONS = 40


@pytest.fixture(scope="module")
def harness():
    return Harness()


def run(harness, name, simulator="simit", arch=ARM, platform=VEXPRESS, iterations=ITERATIONS):
    return harness.run_benchmark(
        get_benchmark(name), simulator, arch, platform, iterations=iterations
    )


@pytest.mark.parametrize("bench", SUITE, ids=[b.name for b in SUITE])
@pytest.mark.parametrize(
    "arch,platform", [(ARM, VEXPRESS), (X86, PCPLAT)], ids=["arm", "x86"]
)
class TestAllBenchmarksRun:
    def test_runs_on_reference_engine(self, harness, bench, arch, platform):
        result = harness.run_benchmark(bench, "simit", arch, platform, iterations=20)
        if not bench.effective(arch):
            assert result.status == "not-applicable"
            return
        assert result.status == "ok", result.error
        assert result.kernel_instructions > 0
        assert result.operations > 0

    def test_runs_on_dbt(self, harness, bench, arch, platform):
        result = harness.run_benchmark(bench, "qemu-dbt", arch, platform, iterations=20)
        if not bench.effective(arch):
            assert result.status == "not-applicable"
            return
        assert result.status == "ok", result.error


class TestOperationRates:
    """The tested-operation count per iteration must match the
    benchmark's declared ops_per_iteration (within the one-off slack of
    warm-up effects)."""

    @pytest.mark.parametrize(
        "name",
        [
            "Inter-Page Direct",
            "Inter-Page Indirect",
            "Intra-Page Direct",
            "Intra-Page Indirect",
            "Data Access Fault",
            "Instruction Access Fault",
            "Undefined Instruction",
            "System Call",
            "External Software Interrupt",
            "Memory Mapped Device",
            "Coprocessor Access",
            "TLB Eviction",
            "TLB Flush",
        ],
    )
    def test_exact_rate(self, harness, name):
        bench = get_benchmark(name)
        result = run(harness, name)
        assert result.ok
        expected = ITERATIONS * bench.ops_per_iteration
        # Allow one iteration of slack for warm-up / final-iteration
        # effects (e.g. the loop's final branch is not taken).
        assert expected - bench.ops_per_iteration <= result.operations <= expected

    def test_code_generation_rates(self, harness):
        for name in ("Small Blocks", "Large Blocks"):
            bench = get_benchmark(name)
            result = run(harness, name)
            assert result.ok
            expected = ITERATIONS * bench.ops_per_iteration
            # First-iteration stores happen before the code was ever
            # executed, so they are not counted as code writes.
            assert expected - bench.ops_per_iteration <= result.operations <= expected

    def test_hot_memory_rate(self, harness):
        bench = get_benchmark("Hot Memory Access")
        result = run(harness, "Hot Memory Access")
        assert result.operations >= ITERATIONS * bench.ops_per_iteration

    def test_cold_memory_misses_every_iteration(self, harness):
        result = run(harness, "Cold Memory Access", iterations=100)
        assert result.ok
        # Every access walks a fresh page: every one misses the 64-entry TLB.
        assert result.operations >= 100

    def test_nonpriv_rate_on_arm(self, harness):
        bench = get_benchmark("Nonprivileged Access")
        result = run(harness, "Nonprivileged Access")
        assert result.ok
        assert result.operations == ITERATIONS * bench.ops_per_iteration


class TestArchSpecifics:
    def test_nonpriv_not_applicable_on_x86(self, harness):
        result = run(harness, "Nonprivileged Access", arch=X86, platform=PCPLAT)
        assert result.status == "not-applicable"

    def test_coproc_counter_differs_by_arch(self):
        bench = get_benchmark("Coprocessor Access")
        assert bench.operation_counters_for(ARM) == ("coproc_reads",)
        assert bench.operation_counters_for(X86) == ("coproc_writes",)

    def test_mmio_unsupported_on_gem5(self, harness):
        result = run(harness, "Memory Mapped Device", simulator="gem5")
        assert result.status == "unsupported"

    def test_swirq_unsupported_on_gem5(self, harness):
        result = run(harness, "External Software Interrupt", simulator="gem5", iterations=5)
        assert result.status == "unsupported"


class TestStructuralEffects:
    def test_small_blocks_forces_retranslation(self, harness):
        result = run(harness, "Small Blocks", simulator="qemu-dbt", iterations=30)
        assert result.ok
        delta = result.kernel_delta
        assert delta["smc_invalidations"] >= 29
        assert delta["translations"] >= 29

    def test_intra_page_direct_chains_on_dbt(self, harness):
        result = run(harness, "Intra-Page Direct", simulator="qemu-dbt", iterations=50)
        assert result.ok
        delta = result.kernel_delta
        assert delta["chain_follows"] > delta["slow_dispatches"]

    def test_inter_page_direct_does_not_chain(self, harness):
        result = run(harness, "Inter-Page Direct", simulator="qemu-dbt", iterations=50)
        assert result.ok
        delta = result.kernel_delta
        # Cross-page direct branches go through the block cache.
        assert delta["slow_dispatches"] >= delta["branches_direct_inter"]

    def test_tlb_flush_refills(self, harness):
        result = run(harness, "TLB Flush", iterations=50)
        delta = result.kernel_delta
        assert delta["tlb_flushes"] == 50
        # The flushed page must be re-walked every iteration.
        assert delta["tlb_misses"] >= 50

    def test_syscall_benchmark_returns_cleanly(self, harness):
        result = run(harness, "System Call", iterations=25)
        delta = result.kernel_delta
        assert delta["syscalls"] == 25
        assert delta["exception_returns"] == 25
