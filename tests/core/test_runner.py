"""Experiment-runner and result-cache tests.

The contracts under test:

- structurally-equal jobs share one execution, and pricing per spec
  reproduces exactly what naive serial execution would have produced;
- ``jobs=N`` fan-out never changes results (merge is deterministic, in
  submission order);
- a warm cache reproduces a cold run exactly while executing zero
  guest instructions;
- the cache key tracks everything the stored delta depends on
  (iterations, structural config, counter schema) and nothing it does
  not (cost overrides).
"""

import pytest

from repro.analysis import figures
from repro.analysis.sweep import VersionSweep
from repro.arch import ARM
from repro.core import (
    ExecutionRecord,
    ExperimentRunner,
    Harness,
    JobSpec,
    ResultCache,
    TimingPolicy,
    get_benchmark,
    job_fingerprint,
    structural_key,
)
from repro.core import resultcache
from repro.errors import UnsupportedFeatureError
from repro.platform import VEXPRESS
from repro.sim.dbt.config import DBTConfig
from repro.sim.dbt.versions import QEMU_VERSIONS, dbt_config_for_version


def _dicts(results, with_wall=True):
    dicts = [res.as_dict() for res in results]
    if not with_wall:
        for entry in dicts:
            entry.pop("kernel_wall_ns")
    return dicts


class _CountingHarness(Harness):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.executions = 0

    def execute_benchmark(self, *args, **kwargs):
        self.executions += 1
        return super().execute_benchmark(*args, **kwargs)


class TestStructuralKey:
    def test_cost_overrides_do_not_matter(self):
        a = dbt_config_for_version("v2.1.0", "arm")
        b = dbt_config_for_version("v2.4.1", "arm")
        assert a.cost_overrides != b.cost_overrides
        assert structural_key("qemu-dbt", a) == structural_key("qemu-dbt", b)

    def test_structure_matters(self):
        old = dbt_config_for_version("v1.7.0", "arm")  # tlb_bits=7
        new = dbt_config_for_version("v2.5.0-rc2", "arm")  # tlb_bits=8
        assert structural_key("qemu-dbt", old) != structural_key("qemu-dbt", new)

    def test_sim_kwargs_matter(self):
        assert structural_key("qemu-dbt", None, {"asid_tagged": True}) != structural_key(
            "qemu-dbt", None, {}
        )
        assert structural_key("simit", None, {"tlb_capacity": 128}) != structural_key(
            "simit"
        )

    def test_unknown_sim_kwargs_rejected(self):
        with pytest.raises(ValueError, match="unknown engine option"):
            structural_key("simit", None, {"x": 1})

    def test_object_valued_sim_kwargs_rejected(self):
        # Objects have no canonical encoding; silently keying on their
        # repr (memory address) would split the cache between equal
        # configs built separately, so they must be rejected loudly.
        class Policy:
            pass

        with pytest.raises(ValueError, match="tlb_capacity"):
            structural_key("simit", None, {"tlb_capacity": Policy()})

    def test_separately_built_equal_configs_collide(self):
        # Regression for the repr-address bug: two equal configurations
        # constructed independently must produce identical keys.
        a = structural_key("simit", None, {"tlb_capacity": 128, "asid_tagged": True})
        b = structural_key("simit", None, {"asid_tagged": True, "tlb_capacity": 128})
        assert a == b
        assert structural_key("qemu-dbt", DBTConfig(tlb_bits=7)) == structural_key(
            "qemu-dbt", DBTConfig(tlb_bits=7)
        )

    def test_engines_distinct(self):
        assert structural_key("simit") != structural_key("gem5")


class TestJobSpec:
    def test_resolves_benchmark_names(self):
        spec = JobSpec("System Call", "simit", ARM, VEXPRESS)
        assert spec.benchmark is get_benchmark("System Call")
        assert spec.iterations == spec.benchmark.default_iterations

    def test_payload_roundtrip_preserves_identity(self):
        spec = JobSpec(
            "System Call",
            "qemu-dbt",
            ARM,
            VEXPRESS,
            iterations=20,
            dbt_config=dbt_config_for_version("v2.1.0", "arm"),
        )
        clone = JobSpec.from_payload(spec.to_payload())
        assert clone.engine_spec == spec.engine_spec
        assert clone.benchmark is spec.benchmark
        assert clone.iterations == spec.iterations
        assert clone.fingerprint() == spec.fingerprint()
        assert clone.execution_key() == spec.execution_key()

    def test_executes_flags_static_outcomes(self):
        ok = JobSpec("System Call", "simit", ARM, VEXPRESS)
        assert ok.executes()
        # Figure 7's static dagger: Gem5 lacks the test device entirely.
        dagger = JobSpec("Memory Mapped Device", "gem5", ARM, VEXPRESS)
        assert not dagger.executes()
        # The external-interrupt dagger is detected dynamically instead,
        # so the job nominally executes (and the record is cacheable).
        dynamic = JobSpec("External Software Interrupt", "gem5", ARM, VEXPRESS)
        assert dynamic.executes()


class TestDeduplication:
    def test_sweep_grid_executes_once_per_structural_group(self):
        harness = _CountingHarness(timing=TimingPolicy.MODELED)
        runner = ExperimentRunner(harness=harness)
        benchmark = get_benchmark("System Call")
        specs = [
            JobSpec(
                benchmark,
                "qemu-dbt",
                ARM,
                VEXPRESS,
                iterations=20,
                dbt_config=dbt_config_for_version(version, "arm"),
            )
            for version in QEMU_VERSIONS
        ]
        results = runner.run(specs)
        assert len(results) == len(QEMU_VERSIONS)
        assert all(res.ok for res in results)
        # Only two structural configurations exist in the timeline.
        assert harness.executions == 2
        assert runner.last_stats == {
            "jobs": 20,
            "unique": 2,
            "static": 0,
            "cache_hits": 0,
            "executed": 2,
            "crashed": 0,
            "timeout": 0,
            "errors": 0,
            "retried": 0,
            "worker_lost": 0,
            "failures": [],
        }

    def test_deduped_results_match_naive_serial(self):
        benchmark = get_benchmark("System Call")
        naive = Harness(timing=TimingPolicy.MODELED)
        expected = [
            naive.run_benchmark(
                benchmark,
                "qemu-dbt",
                ARM,
                VEXPRESS,
                iterations=20,
                dbt_config=dbt_config_for_version(version, "arm"),
            )
            for version in QEMU_VERSIONS
        ]
        runner = ExperimentRunner()
        got = runner.run(
            [
                JobSpec(
                    benchmark,
                    "qemu-dbt",
                    ARM,
                    VEXPRESS,
                    iterations=20,
                    dbt_config=dbt_config_for_version(version, "arm"),
                )
                for version in QEMU_VERSIONS
            ]
        )
        assert _dicts(got, with_wall=False) == _dicts(expected, with_wall=False)


class TestParallelDeterminism:
    def test_figure7_grid_parallel_equals_serial(self):
        serial = figures.figure7(scale=0.1)
        parallel = figures.figure7(scale=0.1, runner=ExperimentRunner(jobs=4))
        assert parallel == serial

    def test_figure6_grid_parallel_equals_serial(self):
        serial = figures.figure6(scale=0.05)
        parallel = figures.figure6(
            scale=0.05, runner=ExperimentRunner(jobs=4)
        )
        assert parallel == serial

    def test_suite_parallel_equals_serial(self):
        kwargs = dict(scale=0.05)
        serial = ExperimentRunner(jobs=1).run_suite("simit", ARM, VEXPRESS, **kwargs)
        parallel = ExperimentRunner(jobs=4).run_suite("simit", ARM, VEXPRESS, **kwargs)
        assert _dicts(parallel, with_wall=False) == _dicts(serial, with_wall=False)

    def test_parallel_error_statuses_survive_the_pool(self):
        # gem5's dagger rows are static, but parallel pools must also
        # transport dynamic statuses; run the full gem5 suite both ways.
        serial = ExperimentRunner(jobs=1).run_suite("gem5", ARM, VEXPRESS, scale=0.05)
        parallel = ExperimentRunner(jobs=4).run_suite("gem5", ARM, VEXPRESS, scale=0.05)
        assert [res.status for res in parallel] == [res.status for res in serial]
        assert "unsupported" in {res.status for res in parallel}


class TestResultCache:
    def test_warm_run_is_exact_and_executes_nothing(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        cold_runner = ExperimentRunner(cache=ResultCache(cache_dir))
        cold = cold_runner.run_suite("simit", ARM, VEXPRESS, scale=0.05)
        assert cold_runner.last_stats["cache_hits"] == 0
        assert cold_runner.last_stats["executed"] == len(cold)

        # A warm run must never instantiate an engine.
        def _forbidden(*args, **kwargs):
            raise AssertionError("guest execution attempted on a warm cache")

        monkeypatch.setattr("repro.sim.spec.EngineSpec.build", _forbidden)
        warm_runner = ExperimentRunner(cache=ResultCache(cache_dir))
        warm = warm_runner.run_suite("simit", ARM, VEXPRESS, scale=0.05)
        assert warm_runner.last_stats["cache_hits"] == len(cold)
        assert warm_runner.last_stats["executed"] == 0
        # Exact reproduction, wall-clock fields included (they come from
        # the cached record).
        assert _dicts(warm) == _dicts(cold)

    def test_version_sweep_warms_from_structural_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep = VersionSweep(ARM, VEXPRESS, runner=ExperimentRunner(cache=cache))
        benchmark = get_benchmark("TLB Flush")
        cold = sweep.run(benchmark, iterations=20)
        assert cache.stores == 2  # one per structural group
        warm_sweep = VersionSweep(
            ARM, VEXPRESS, runner=ExperimentRunner(cache=ResultCache(tmp_path / "cache"))
        )
        warm = warm_sweep.run(benchmark, iterations=20)
        assert warm.seconds == cold.seconds
        assert warm_sweep.runner.last_stats["executed"] == 0

    def test_wallclock_timing_bypasses_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        harness = Harness(timing=TimingPolicy.WALLCLOCK)
        runner = ExperimentRunner(harness=harness, cache=cache)
        runner.run([JobSpec("System Call", "simit", ARM, VEXPRESS, iterations=10)])
        assert cache.stores == 0
        assert cache.stats()["entries"] == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = JobSpec("System Call", "simit", ARM, VEXPRESS, iterations=10)
        runner = ExperimentRunner(cache=cache)
        runner.run([spec])
        path = cache._path(spec.fingerprint())
        with open(path, "w") as fh:
            fh.write("{not json")
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.get(spec.fingerprint()) is None
        # And a re-run repairs the entry.
        rerun = ExperimentRunner(cache=fresh)
        results = rerun.run([spec])
        assert results[0].ok
        assert fresh.get(spec.fingerprint()) is not None

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ExperimentRunner(cache=cache)
        runner.run(
            [
                JobSpec("System Call", "simit", ARM, VEXPRESS, iterations=10),
                JobSpec("TLB Flush", "simit", ARM, VEXPRESS, iterations=10),
            ]
        )
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0

    def test_counter_schema_change_is_clean_miss(self, tmp_path, monkeypatch):
        # A change to the counter vocabulary moves every fingerprint
        # (via the schema tag), so old entries become clean misses and
        # are re-executed -- never read back into a KeyError.
        cache_dir = tmp_path / "cache"
        cold_runner = ExperimentRunner(cache=ResultCache(cache_dir))
        cold = cold_runner.run_suite("simit", ARM, VEXPRESS, scale=0.05)
        assert cold_runner.last_stats["executed"] == len(cold)
        monkeypatch.setattr(
            resultcache,
            "COUNTER_NAMES",
            tuple(resultcache.COUNTER_NAMES) + ("speculative_fizzles",),
        )
        warm_runner = ExperimentRunner(cache=ResultCache(cache_dir))
        warm = warm_runner.run_suite("simit", ARM, VEXPRESS, scale=0.05)
        assert warm_runner.last_stats["cache_hits"] == 0
        assert warm_runner.last_stats["executed"] == len(warm)
        assert _dicts(warm, with_wall=False) == _dicts(cold, with_wall=False)

    def test_execution_record_payload_roundtrip(self):
        record = ExecutionRecord(
            status="ok",
            kernel_delta={"instructions": 120, "loads": 7},
            kernel_wall_ns=4321,
            total_instructions=500,
        )
        clone = ExecutionRecord.from_payload(record.to_payload())
        assert clone.to_payload() == record.to_payload()
        assert clone.kernel_delta == record.kernel_delta

    def test_unsupported_record_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        record = ExecutionRecord(
            status="unsupported", error=UnsupportedFeatureError("gem5", "testctl")
        )
        cache.put("ab" + "0" * 62, record)
        loaded = cache.get("ab" + "0" * 62)
        assert loaded.status == "unsupported"
        assert isinstance(loaded.error, UnsupportedFeatureError)
        assert loaded.error.simulator == "gem5"
        assert loaded.error.feature == "testctl"


class TestCacheKey:
    def _fingerprint(self, **overrides):
        params = dict(
            benchmark=get_benchmark("System Call"),
            simulator="qemu-dbt",
            arch=ARM,
            platform=VEXPRESS,
            iterations=20,
            structure=structural_key("qemu-dbt", DBTConfig()),
        )
        params.update(overrides)
        return job_fingerprint(**params)

    def test_iterations_change_key(self):
        assert self._fingerprint() != self._fingerprint(iterations=21)

    def test_structural_config_changes_key(self):
        other = structural_key("qemu-dbt", DBTConfig(tlb_bits=7))
        assert self._fingerprint() != self._fingerprint(structure=other)

    def test_cost_overrides_share_key(self):
        a = structural_key("qemu-dbt", dbt_config_for_version("v2.1.0", "arm"))
        b = structural_key("qemu-dbt", dbt_config_for_version("v2.4.1", "arm"))
        assert self._fingerprint(structure=a) == self._fingerprint(structure=b)

    def test_benchmark_and_arch_change_key(self):
        assert self._fingerprint() != self._fingerprint(
            benchmark=get_benchmark("TLB Flush")
        )
        assert self._fingerprint() != self._fingerprint(simulator="simit")

    def test_schema_version_changes_key(self, monkeypatch):
        before = self._fingerprint()
        monkeypatch.setattr(
            resultcache, "COST_SCHEMA_VERSION", resultcache.COST_SCHEMA_VERSION + 1
        )
        assert self._fingerprint() != before

    def test_non_serialisable_structure_rejected(self):
        with pytest.raises(ValueError, match="JSON-serialisable"):
            self._fingerprint(structure=object())
