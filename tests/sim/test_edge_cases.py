"""Engine edge cases: execute-from-device, XN/permission faults through
the full fetch path, privilege interactions, cross arch/platform combos.
"""

import pytest

from repro.arch import ARM, X86
from repro.core import Harness, get_benchmark
from repro.isa.assembler import assemble
from repro.machine import Board
from repro.machine.mmu import AP_KERNEL_RW, AP_USER_RW, PageTableBuilder
from repro.platform import PCPLAT, VEXPRESS
from repro.sim import DBTSimulator, FastInterpreter
from tests.sim.util import ALL_ENGINES, run_asm

TTBR = 0x0100_0000
L2_POOL = 0x0101_0000


def _mmu_program(extra_setup="", body="    halt #0", data_region=""):
    return """
.org 0x4000
    b _start
    b bad
    b bad
    b pab
    b dab
    b bad
.org 0x8000
_start:
    li sp, 0xf0000
    li r0, 0x4000
    mcr r0, p15, c6
    li r0, 0x%08x
    mcr r0, p15, c2
    movi r0, 1
    mcr r0, p15, c1
%s
%s
bad:
    halt #0xE0
pab:
    halt #0xE1
dab:
    halt #0xE2
%s
""" % (TTBR, extra_setup, body, data_region)


def _run_with_tables(engine_cls, source, table_setup, max_insns=100_000):
    board = Board(VEXPRESS)
    builder = PageTableBuilder(board.memory, TTBR, L2_POOL)
    table_setup(builder)
    board.load(assemble(source))
    engine = engine_cls(board, arch=ARM)
    return engine, board, engine.run(max_insns=max_insns)


@pytest.fixture(params=ALL_ENGINES, ids=[cls.name for cls in ALL_ENGINES])
def engine_cls(request):
    return request.param


class TestFetchEdgeCases:
    def test_execute_from_device_is_prefetch_abort(self, engine_cls):
        # MMU off: jump straight at the UART.
        _e, _b, res = run_asm(
            engine_cls,
            """
    li r0, 0x4000
    mcr r0, p15, c6
    li r1, 0xf0000000
    blr r1
    halt #0xBB
.org 0x4000
    b _start
    b h
    b h
    b p
    b h
    b h
h:
    halt #0xE0
p:
    halt #0xAA
""",
        )
        assert res.halt_code == 0xAA

    def test_execute_from_xn_page_faults(self, engine_cls):
        source = _mmu_program(
            body="""
    li r1, 0x00200000
    blr r1
    halt #0xBB
"""
        )

        def tables(builder):
            builder.map_section(0x0, 0x0, ap=AP_USER_RW)
            builder.map_page(0x0020_0000, 0x0020_0000, ap=AP_USER_RW, xn=True)

        _e, _b, res = _run_with_tables(engine_cls, source, tables)
        assert res.halt_code == 0xE1  # prefetch abort handler

    def test_user_access_to_kernel_page_faults(self, engine_cls):
        source = _mmu_program(
            body="""
    li r11, 0x00200000
    cps #0               ; drop to user mode
    ldr r1, [r11]        ; kernel-only page: permission fault
    halt #0xBB
"""
        )

        def tables(builder):
            builder.map_section(0x0, 0x0, ap=AP_USER_RW)
            builder.map_page(0x0020_0000, 0x0020_0000, ap=AP_KERNEL_RW, xn=True)

        _e, _b, res = _run_with_tables(engine_cls, source, tables)
        assert res.halt_code == 0xE2  # data abort handler

    def test_nonpriv_load_faults_on_kernel_page_even_in_kernel_mode(self, engine_cls):
        source = _mmu_program(
            body="""
    li r11, 0x00200000
    ldr r1, [r11]        ; kernel access: fine
    ldrt r2, [r11]       ; user-privilege access: faults
    halt #0xBB
"""
        )

        def tables(builder):
            builder.map_section(0x0, 0x0, ap=AP_USER_RW)
            builder.map_page(0x0020_0000, 0x0020_0000, ap=AP_KERNEL_RW, xn=True)

        _e, _b, res = _run_with_tables(engine_cls, source, tables)
        assert res.halt_code == 0xE2


class TestCrossCombos:
    """Arch profiles and platforms are orthogonal: the ARM profile on
    the PC-style platform (and vice versa) must work unchanged."""

    @pytest.mark.parametrize(
        "arch,platform",
        [(ARM, PCPLAT), (X86, VEXPRESS)],
        ids=["arm-on-pcplat", "x86-on-vexpress"],
    )
    def test_cross_combo_suite_sample(self, arch, platform):
        harness = Harness()
        for name in ("System Call", "Hot Memory Access", "TLB Flush"):
            result = harness.run_benchmark(
                get_benchmark(name), "simit", arch, platform, iterations=20
            )
            assert result.status == "ok", (name, result.error)


class TestStorePaths:
    def test_store_to_translated_page_under_mmu(self):
        """DBT: SMC invalidation must work through the softmmu path
        (store via a *virtual* address into translated code)."""
        source = _mmu_program(
            body="""
    bl f
    mov r6, r4
    li r0, f
    li r1, 0x19400002    ; movi r4, 2
    str r1, [r0]
    bl f
    halt #0
""",
            data_region="""
.page
f:
    movi r4, 1
    br lr
""",
        )

        def tables(builder):
            builder.map_section(0x0, 0x0, ap=AP_USER_RW)

        engine, board, res = _run_with_tables(DBTSimulator, source, tables)
        assert res.halted_ok
        assert board.cpu.regs[6] == 1
        assert board.cpu.regs[4] == 2
        assert engine.counters.smc_invalidations >= 1

    def test_interpreter_matches(self):
        source = _mmu_program(
            body="""
    bl f
    mov r6, r4
    li r0, f
    li r1, 0x19400002
    str r1, [r0]
    bl f
    halt #0
""",
            data_region="""
.page
f:
    movi r4, 1
    br lr
""",
        )

        def tables(builder):
            builder.map_section(0x0, 0x0, ap=AP_USER_RW)

        _e, board, res = _run_with_tables(FastInterpreter, source, tables)
        assert res.halted_ok
        assert (board.cpu.regs[6], board.cpu.regs[4]) == (1, 2)
