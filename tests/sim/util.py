"""Shared helpers for engine tests."""

from repro.arch import ARM
from repro.isa.assembler import assemble
from repro.machine import Board
from repro.platform import VEXPRESS
from repro.sim import (
    DBTSimulator,
    DetailedInterpreter,
    FastInterpreter,
    NativeMachine,
    VirtSimulator,
)

ALL_ENGINES = (
    FastInterpreter,
    DBTSimulator,
    DetailedInterpreter,
    VirtSimulator,
    NativeMachine,
)

CODE_BASE = 0x8000


def run_asm(engine_cls, body, platform=VEXPRESS, arch=ARM, max_insns=200_000, **kwargs):
    """Assemble a bare program (MMU off) and run it on an engine.

    ``body`` runs at 0x8000 with sp preset; it must end with ``halt``.
    Returns (engine, board, run_result).
    """
    source = ".org 0x%x\n_start:\n    li sp, 0x100000\n%s\n" % (CODE_BASE, body)
    program = assemble(source)
    board = Board(platform)
    board.load(program)
    engine = engine_cls(board, arch=arch, **kwargs)
    result = engine.run(max_insns=max_insns)
    return engine, board, result


def run_on_all(body, **kwargs):
    """Run the same program on every engine; returns {name: (engine, board, result)}."""
    return {cls.name: run_asm(cls, body, **kwargs) for cls in ALL_ENGINES}
