"""Differential testing: all engines must implement identical
architectural semantics.

Hypothesis generates random guest programs (straight-line ALU work,
memory traffic, branches, and small loops) and asserts that every
engine produces the same final register file, memory contents and UART
output.
"""

from hypothesis import given, settings, strategies as st

from repro.arch import ARM
from repro.isa.assembler import assemble
from repro.machine import Board
from repro.platform import VEXPRESS
from tests.sim.util import ALL_ENGINES

_WORK_REGS = ("r1", "r2", "r3", "r4", "r5")

_reg = st.sampled_from(_WORK_REGS)
_imm = st.integers(min_value=0, max_value=0xFFFF)
_shift = st.integers(min_value=0, max_value=31)

_alu3 = st.sampled_from(["add", "sub", "and", "orr", "eor", "mul", "udiv", "urem"])
_alui = st.sampled_from(["addi", "subi", "andi", "orri", "eori", "muli"])


@st.composite
def straight_line_insn(draw):
    kind = draw(st.integers(min_value=0, max_value=5))
    if kind == 0:
        return "    %s %s, %s, %s" % (draw(_alu3), draw(_reg), draw(_reg), draw(_reg))
    if kind == 1:
        return "    %s %s, %s, %d" % (draw(_alui), draw(_reg), draw(_reg), draw(_imm))
    if kind == 2:
        return "    movi %s, %d" % (draw(_reg), draw(_imm))
    if kind == 3:
        return "    movt %s, %d" % (draw(_reg), draw(_imm))
    if kind == 4:
        return "    %s %s, %s, %d" % (
            draw(st.sampled_from(["lsli", "lsri", "asri"])),
            draw(_reg),
            draw(_reg),
            draw(_shift),
        )
    return "    mvn %s, %s" % (draw(_reg), draw(_reg))


@st.composite
def memory_insn(draw):
    slot = draw(st.integers(min_value=0, max_value=15))
    reg = draw(_reg)
    if draw(st.booleans()):
        return "    str %s, [r6, #%d]" % (reg, 4 * slot)
    return "    ldr %s, [r6, #%d]" % (reg, 4 * slot)


def _run_everywhere(source):
    outcomes = {}
    for engine_cls in ALL_ENGINES:
        board = Board(VEXPRESS)
        board.load(assemble(source))
        engine = engine_cls(board, arch=ARM)
        result = engine.run(max_insns=100_000)
        data = board.memory.read_bytes(0x0200_0000, 64)
        outcomes[engine_cls.name] = (
            result.exit_reason,
            result.halt_code,
            board.cpu.snapshot(),
            data,
            board.uart.text,
        )
    return outcomes


def _assert_agreement(outcomes):
    reference_name = next(iter(outcomes))
    reference = outcomes[reference_name]
    for name, outcome in outcomes.items():
        assert outcome == reference, "%s diverged from %s" % (name, reference_name)


class TestStraightLine:
    @settings(max_examples=30, deadline=None)
    @given(insns=st.lists(straight_line_insn(), min_size=1, max_size=40))
    def test_alu_programs_agree(self, insns):
        source = ".org 0x8000\n_start:\n" + "\n".join(insns) + "\n    halt #0\n"
        _assert_agreement(_run_everywhere(source))

    @settings(max_examples=20, deadline=None)
    @given(
        insns=st.lists(
            st.one_of(straight_line_insn(), memory_insn()), min_size=1, max_size=30
        )
    )
    def test_memory_programs_agree(self, insns):
        source = (
            ".org 0x8000\n_start:\n    li r6, 0x2000000\n"
            + "\n".join(insns)
            + "\n    halt #0\n"
        )
        _assert_agreement(_run_everywhere(source))


class TestLoops:
    @settings(max_examples=15, deadline=None)
    @given(
        body=st.lists(straight_line_insn(), min_size=1, max_size=10),
        count=st.integers(min_value=1, max_value=30),
    )
    def test_counted_loops_agree(self, body, count):
        source = (
            ".org 0x8000\n_start:\n    movi r7, %d\nloop:\n" % count
            + "\n".join(body)
            + "\n    subi r7, r7, 1\n    cmpi r7, 0\n    bne loop\n    halt #0\n"
        )
        outcomes = _run_everywhere(source)
        _assert_agreement(outcomes)
        # And the instruction counts agree too (same dynamic path).
        # (They are part of neither snapshot, so check separately.)

    @settings(max_examples=10, deadline=None)
    @given(
        selector=st.integers(min_value=0, max_value=0xFFFF),
        cond=st.sampled_from(["beq", "bne", "blt", "bge", "blo", "bhs"]),
    )
    def test_conditional_paths_agree(self, selector, cond):
        source = """
.org 0x8000
_start:
    movi r1, %d
    cmpi r1, 0x8000
    %s taken
    movi r2, 111
    halt #0
taken:
    movi r2, 222
    halt #0
""" % (selector, cond)
        _assert_agreement(_run_everywhere(source))


class TestInstructionCountsAgree:
    @settings(max_examples=10, deadline=None)
    @given(insns=st.lists(straight_line_insn(), min_size=1, max_size=20))
    def test_retired_instruction_counts_match(self, insns):
        source = ".org 0x8000\n_start:\n" + "\n".join(insns) + "\n    halt #0\n"
        counts = {}
        for engine_cls in ALL_ENGINES:
            board = Board(VEXPRESS)
            board.load(assemble(source))
            engine = engine_cls(board, arch=ARM)
            engine.run(max_insns=100_000)
            counts[engine_cls.name] = engine.counters.instructions
        values = set(counts.values())
        assert len(values) == 1, counts
