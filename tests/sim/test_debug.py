"""Debugger tests."""

import pytest

from repro.arch import ARM
from repro.errors import IncompatibleEngineError
from repro.isa.assembler import assemble
from repro.machine import Board
from repro.platform import VEXPRESS
from repro.sim import DBTSimulator, FastInterpreter
from repro.sim.debug import (
    Debugger,
    STOP_BREAKPOINT,
    STOP_HALT,
    STOP_LIMIT,
    STOP_STEP,
    STOP_WATCHPOINT,
)

PROGRAM = """
.org 0x8000
_start:
    movi r1, 5
    li r6, 0x2000000
loop:
    addi r2, r2, 10
    str r2, [r6]
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
done:
    halt #0
"""


@pytest.fixture
def debugger():
    board = Board(VEXPRESS)
    program = assemble(PROGRAM)
    board.load(program)
    engine = FastInterpreter(board, arch=ARM)
    dbg = Debugger(engine)
    dbg.program = program
    return dbg


class TestBreakpoints:
    def test_stop_at_breakpoint(self, debugger):
        loop = debugger.program.symbol("loop")
        debugger.add_breakpoint(loop)
        assert debugger.cont() == STOP_BREAKPOINT
        assert debugger.engine.cpu.pc == loop
        # Nothing of the loop body ran yet.
        assert debugger.read_registers()["r2"] == 0

    def test_resume_skips_current_breakpoint(self, debugger):
        loop = debugger.program.symbol("loop")
        debugger.add_breakpoint(loop)
        assert debugger.cont() == STOP_BREAKPOINT
        # Each cont() runs one full loop iteration back to the head.
        assert debugger.cont() == STOP_BREAKPOINT
        assert debugger.read_registers()["r2"] == 10
        assert debugger.cont() == STOP_BREAKPOINT
        assert debugger.read_registers()["r2"] == 20

    def test_remove_breakpoint(self, debugger):
        loop = debugger.program.symbol("loop")
        debugger.add_breakpoint(loop)
        debugger.cont()
        debugger.remove_breakpoint(loop)
        assert debugger.cont() == STOP_HALT
        assert debugger.read_registers()["r2"] == 50

    def test_run_to_halt_without_breakpoints(self, debugger):
        assert debugger.cont() == STOP_HALT

    def test_limit(self, debugger):
        # No breakpoints, tiny budget.
        assert debugger.cont(max_insns=3) == STOP_LIMIT

    def test_hits_history(self, debugger):
        loop = debugger.program.symbol("loop")
        debugger.add_breakpoint(loop)
        debugger.cont()
        assert debugger.hits[0][0] == STOP_BREAKPOINT
        assert debugger.hits[0][1] == loop


class TestWatchpoints:
    def test_stop_after_watched_store(self, debugger):
        debugger.add_watchpoint(0x2000000)
        assert debugger.cont() == STOP_WATCHPOINT
        # The store completed (GDB semantics) ...
        assert debugger.read_memory(0x2000000, 1) == [10]
        # ... and we stopped at the instruction after it.
        assert "subi" in debugger.where()

    def test_watchpoint_detail(self, debugger):
        debugger.add_watchpoint(0x2000000)
        debugger.cont()
        reason, _pc, detail = debugger.hits[0]
        assert reason == STOP_WATCHPOINT
        assert detail == (0x2000000, 10)

    def test_repeated_watch_hits(self, debugger):
        debugger.add_watchpoint(0x2000000)
        count = 0
        while debugger.cont() == STOP_WATCHPOINT:
            count += 1
        assert count == 5


class TestStepping:
    def test_single_step(self, debugger):
        assert debugger.step() == STOP_STEP
        assert debugger.read_registers()["r1"] == 5
        assert debugger.engine.cpu.pc == 0x8004

    def test_step_counts(self, debugger):
        debugger.step(3)  # movi + li (2 words)
        assert debugger.read_registers()["r6"] == 0x2000000

    def test_step_through_breakpoint(self, debugger):
        debugger.add_breakpoint(0x8004)
        assert debugger.step(5) == STOP_STEP  # breakpoints ignored while stepping

    def test_step_to_halt(self, debugger):
        assert debugger.step(1000) == STOP_HALT


class TestInspection:
    def test_where_disassembles(self, debugger):
        assert debugger.where() == "0x00008000: movi r1, #5"

    def test_read_registers(self, debugger):
        registers = debugger.read_registers()
        assert registers["pc"] == 0x8000
        assert set(registers) >= {"r0", "r15", "pc", "psr", "elr", "spsr"}

    def test_write_register(self, debugger):
        debugger.write_register("r1", 123)
        assert debugger.read_registers()["r1"] == 123
        debugger.write_register("pc", 0x8004)
        assert debugger.engine.cpu.pc == 0x8004
        with pytest.raises(KeyError):
            debugger.write_register("cr3", 1)

    def test_counters_unskewed_by_breakpoint(self, debugger):
        """A breakpoint stop must not count the unexecuted instruction."""
        loop = debugger.program.symbol("loop")
        debugger.add_breakpoint(loop)
        debugger.cont()
        at_break = debugger.engine.counters.instructions
        debugger.remove_breakpoint(loop)
        debugger.cont()
        plain_board = Board(VEXPRESS)
        plain_board.load(debugger.program)
        plain = FastInterpreter(plain_board, arch=ARM)
        plain.run(max_insns=10_000)
        assert debugger.engine.counters.instructions == plain.counters.instructions
        assert at_break == 3  # movi + li (2 words)

    def test_rejects_dbt(self):
        board = Board(VEXPRESS)
        board.load(assemble(PROGRAM))
        with pytest.raises(IncompatibleEngineError, match="supports_insn_trace"):
            Debugger(DBTSimulator(board, arch=ARM))

    def test_detach_restores_hooks(self, debugger):
        engine = debugger.engine
        original_pre = engine._pre_execute
        original_write = engine._mem_write
        debugger.cont(max_insns=2)
        assert engine._pre_execute == original_pre
        assert engine._mem_write == original_write
