"""Bit-identical guest behaviour with every host fast path toggled.

The fast-path subsystem (predecoded block interpretation in the
interpreters, translation memoization in the DBT engine, the
persistent cross-run code cache) buys host wallclock only: guest-
visible counter deltas and modeled results must be bit-for-bit
identical with each layer on vs off, across the full 18-benchmark
suite on both arch profiles.  Self-modifying code must invalidate
predecoded block lists exactly as it invalidates the decode cache.
"""

import pytest

from repro.arch import get_arch
from repro.core import SUITE, Harness
from repro.obs.metrics import METRICS
from repro.platform import get_platform
from repro.sim import DBTSimulator, FastInterpreter
from repro.sim.dbt import codestore
from repro.sim.dbt.translator import TRANSLATION_MEMO
from repro.sim.spec import spec_for
from tests.sim.util import run_asm

ITERATIONS = 2
_PLATFORM = {"arm": "vexpress", "x86": "pcplat"}
ARCH_NAMES = ("arm", "x86")
BENCH_IDS = [bench.name for bench in SUITE]


@pytest.fixture(scope="module")
def harness():
    # Shared across the module so benchmark programs build once.
    return Harness()


def _observe(harness, bench, arch_name, spec):
    """Everything guest-visible about one run: the execution record
    (minus host wallclock) and the modeled kernel time."""
    arch = get_arch(arch_name)
    platform = get_platform(_PLATFORM[arch_name])
    record = harness.execute_benchmark(
        bench, spec, arch, platform, iterations=ITERATIONS
    )
    payload = record.to_payload()
    payload.pop("kernel_wall_ns")
    result = harness.price_record(
        record, bench, spec, arch, platform, iterations=ITERATIONS
    )
    return payload, result.kernel_ns


@pytest.mark.parametrize("arch_name", ARCH_NAMES)
@pytest.mark.parametrize("bench", SUITE, ids=BENCH_IDS)
class TestToggleEquivalence:
    def test_interp_block_cache(self, harness, bench, arch_name):
        on = _observe(
            harness, bench, arch_name, spec_for("simit", use_block_cache=True)
        )
        off = _observe(
            harness, bench, arch_name, spec_for("simit", use_block_cache=False)
        )
        assert on == off

    def test_dbt_memoization(self, harness, bench, arch_name):
        TRANSLATION_MEMO.clear()
        on = _observe(harness, bench, arch_name, spec_for("qemu-dbt", memoize=True))
        TRANSLATION_MEMO.clear()
        off = _observe(harness, bench, arch_name, spec_for("qemu-dbt", memoize=False))
        assert on == off

    def test_dbt_opt_levels(self, harness, bench, arch_name):
        # The optimizer tier (peephole passes at 1, superblocks at 2)
        # rearranges host code only: every guest-visible counter and
        # the modeled time must be bit-identical across levels.
        TRANSLATION_MEMO.clear()
        base = _observe(harness, bench, arch_name, spec_for("qemu-dbt", opt_level=0))
        for level in (1, 2):
            TRANSLATION_MEMO.clear()
            opt = _observe(
                harness, bench, arch_name, spec_for("qemu-dbt", opt_level=level)
            )
            assert opt == base, "opt_level=%d diverged" % level

    def test_metrics_toggle(self, harness, bench, arch_name):
        # The observability layer records host-side phases/counters
        # only: guest-visible counters and modeled time must be
        # bit-identical with metrics enabled vs disabled, on both the
        # interpreter and the DBT engine.
        for sim in ("simit", "qemu-dbt"):
            spec = spec_for(sim)
            METRICS.reset()
            METRICS.enable(False)
            off = _observe(harness, bench, arch_name, spec)
            try:
                METRICS.enable()
                on = _observe(harness, bench, arch_name, spec)
            finally:
                METRICS.enable(False)
                METRICS.reset()
            assert on == off

    def test_dbt_persistent_store(self, harness, bench, arch_name, tmp_path):
        # memoize off forces every translate through the disk store.
        spec = spec_for("qemu-dbt", memoize=False)
        baseline = _observe(harness, bench, arch_name, spec)
        try:
            codestore.configure(str(tmp_path / "code"))
            cold = _observe(harness, bench, arch_name, spec)  # fills the store
            warm = _observe(harness, bench, arch_name, spec)  # loads from it
        finally:
            codestore.configure(None)
        assert cold == baseline
        assert warm == baseline


class TestHostFieldNeutrality:
    """Host-only knobs must not move structural identity: toggling
    them cannot change cache keys or dedup groups."""

    def test_interp_block_cache_is_host_only(self):
        on = spec_for("simit", use_block_cache=True)
        off = spec_for("simit", use_block_cache=False)
        assert on.structural_key() == off.structural_key()
        assert on.cache_key_payload() == off.cache_key_payload()
        assert on != off  # identity still distinguishes them

    def test_dbt_memoize_is_host_only(self):
        on = spec_for("qemu-dbt", memoize=True)
        off = spec_for("qemu-dbt", memoize=False)
        assert on.structural_key() == off.structural_key()
        assert on.cache_key_payload() == off.cache_key_payload()

    def test_dbt_opt_level_is_host_only(self):
        # opt_level changes how blocks are lowered, never what the
        # guest observes -- it must not split dedup groups or result
        # cache keys (it IS part of the translation/code-store key,
        # which tests/sim/test_dbt_opt.py covers).
        direct = spec_for("qemu-dbt", opt_level=0)
        traced = spec_for("qemu-dbt", opt_level=2)
        assert direct.structural_key() == traced.structural_key()
        assert direct.cache_key_payload() == traced.cache_key_payload()
        assert direct != traced


SMC_BODY = """
    movi r5, 20
outer:
    li r0, patchme
    li r1, 0
    str r1, [r0]          ; rewrite the nop with a nop
    bl patchme
    subi r5, r5, 1
    cmpi r5, 0
    bne outer
    halt #0
.page
patchme:
    nop
    addi r4, r4, 1
    br lr
"""

PATCH_BODY = """
    bl f                   ; predecode the original
    mov r6, r4
    li r0, f
    li r1, 0x19400002      ; movi r4, 2
    str r1, [r0]
    bl f
    halt #0
.page
f:
    movi r4, 1
    br lr
"""


class TestPredecodedBlockInvalidation:
    def test_smc_counters_identical_with_blocks(self):
        runs = {}
        for flag in (False, True):
            engine, board, res = run_asm(
                FastInterpreter, SMC_BODY, use_block_cache=flag
            )
            assert res.halted_ok
            assert board.cpu.regs[4] == 20
            runs[flag] = engine.counters.snapshot()
        assert runs[True] == runs[False]
        assert runs[True]["smc_invalidations"] >= 19

    def test_modified_code_takes_effect_in_replay(self):
        # The store to `f` must drop the predecoded block so the
        # second call replays the *patched* instruction.
        for flag in (False, True):
            engine, board, res = run_asm(
                FastInterpreter, PATCH_BODY, use_block_cache=flag
            )
            assert res.halted_ok
            assert board.cpu.regs[6] == 1
            assert board.cpu.regs[4] == 2


class TestRetranslationCounter:
    def test_smc_rewrite_counts_retranslations(self):
        # Rewriting a nop with a nop re-creates byte-identical blocks:
        # after the first translation every one is a retranslation.
        engine, board, res = run_asm(DBTSimulator, SMC_BODY)
        assert res.halted_ok
        assert engine.counters.translations >= 20
        assert engine.counters.retranslations >= 18
        assert engine.counters.retranslations < engine.counters.translations

    def test_patched_block_is_not_a_retranslation(self):
        # Here the rewritten block has *different* bytes, so the
        # second translation of `f` is fresh, not a retranslation.
        engine, board, res = run_asm(DBTSimulator, PATCH_BODY)
        assert res.halted_ok
        assert engine.counters.retranslations == 0
