"""Self-modifying-code differential fuzzing.

Random rewrite patterns (which victim function, which slot, what the
new instruction is, when it is called) must behave identically on the
fast interpreter and the DBT engine -- the two engines with code
caches to keep coherent.  This is the hardest correctness corner of
any DBT: stale translations must never execute.
"""

from hypothesis import given, settings, strategies as st

from repro.arch import ARM
from repro.isa.assembler import assemble
from repro.isa.encoding import Op, encode
from repro.machine import Board
from repro.platform import VEXPRESS
from repro.sim import DBTSimulator, DetailedInterpreter, FastInterpreter

# Victim functions: two patchable slots each, on their own page.
_VICTIMS = """
.page
victim0:
    nop
    nop
    addi r4, r4, 1
    br lr
victim1:
    nop
    nop
    addi r4, r4, 16
    br lr
"""

#: Harmless instruction words a fuzzer may patch into a slot.
_PATCH_WORDS = (
    encode(Op.NOP),
    encode(Op.ADDI, rd=5, rn=5, imm=1),
    encode(Op.ADDI, rd=5, rn=5, imm=2),
    encode(Op.EORI, rd=5, rn=5, imm=0x55),
    encode(Op.MOVI, rd=6, imm=7),
)

_action = st.tuples(
    st.integers(min_value=0, max_value=1),  # victim index
    st.integers(min_value=0, max_value=1),  # slot index (word 0 or 1)
    st.sampled_from(_PATCH_WORDS),  # new instruction word
    st.booleans(),  # call victim0 afterwards?
    st.booleans(),  # call victim1 afterwards?
)


def _build_source(actions):
    lines = [".org 0x8000", "_start:", "    li sp, 0x100000"]
    for victim, slot, word, call0, call1 in actions:
        lines.append("    li r0, victim%d" % victim)
        lines.append("    li r1, 0x%08x" % word)
        lines.append("    str r1, [r0, #%d]" % (4 * slot))
        if call0:
            lines.append("    li r2, victim0")
            lines.append("    blr r2")
        if call1:
            lines.append("    li r2, victim1")
            lines.append("    blr r2")
    lines.append("    halt #0")
    return "\n".join(lines) + "\n" + _VICTIMS


@settings(max_examples=25, deadline=None)
@given(actions=st.lists(_action, min_size=1, max_size=10))
def test_smc_patterns_agree_across_code_caching_engines(actions):
    source = _build_source(actions)
    program = assemble(source)
    outcomes = {}
    for engine_cls in (FastInterpreter, DBTSimulator, DetailedInterpreter):
        board = Board(VEXPRESS)
        board.load(program)
        engine = engine_cls(board, arch=ARM)
        result = engine.run(max_insns=200_000)
        outcomes[engine_cls.name] = (
            result.exit_reason,
            result.halt_code,
            board.cpu.snapshot(),
            engine.counters.instructions,
        )
    reference = next(iter(outcomes.values()))
    for name, outcome in outcomes.items():
        assert outcome == reference, "engine %s diverged" % name


@settings(max_examples=10, deadline=None)
@given(
    words=st.lists(st.sampled_from(_PATCH_WORDS), min_size=2, max_size=6),
)
def test_repeated_patch_of_same_slot(words):
    """Patching the same slot repeatedly, executing between patches."""
    actions = [(0, 0, word, True, False) for word in words]
    source = _build_source(actions)
    program = assemble(source)
    boards = {}
    for engine_cls in (FastInterpreter, DBTSimulator):
        board = Board(VEXPRESS)
        board.load(program)
        engine = engine_cls(board, arch=ARM)
        result = engine.run(max_insns=100_000)
        assert result.halted_ok
        boards[engine_cls.name] = board
    assert boards["simit"].cpu.snapshot() == boards["qemu-dbt"].cpu.snapshot()
    # And the final memory content of the patched slot is the last word.
    for board in boards.values():
        victim0 = program.symbol("victim0")
        assert board.memory.read32(victim0) == words[-1]
