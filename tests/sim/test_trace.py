"""Execution-tracer tests."""

import pytest

from repro.arch import ARM
from repro.errors import IncompatibleEngineError
from repro.isa.assembler import assemble
from repro.machine import Board
from repro.platform import VEXPRESS
from repro.sim import DBTSimulator, FastInterpreter
from repro.sim.trace import Tracer, trace_blocks

PROGRAM = """
.org 0x8000
_start:
    movi r1, 3
loop:
    addi r2, r2, 5
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
"""


def _engine(cls):
    board = Board(VEXPRESS)
    board.load(assemble(PROGRAM))
    return cls(board, arch=ARM)


class TestTracer:
    def test_records_every_instruction(self):
        engine = _engine(FastInterpreter)
        with Tracer(engine) as tracer:
            result = engine.run(max_insns=1000)
        assert result.halted_ok
        assert len(tracer.records) == engine.counters.instructions
        assert tracer.records[0].pc == 0x8000
        assert "movi r1, #3" in tracer.records[0].text

    def test_trace_follows_control_flow(self):
        engine = _engine(FastInterpreter)
        with Tracer(engine) as tracer:
            engine.run(max_insns=1000)
        pcs = tracer.pcs()
        # The loop head (0x8004) executes three times.
        assert pcs.count(0x8004) == 3

    def test_limit_and_truncation(self):
        engine = _engine(FastInterpreter)
        with Tracer(engine, limit=5) as tracer:
            engine.run(max_insns=1000)
        assert len(tracer.records) == 5
        assert tracer.truncated

    def test_detach_restores_engine(self):
        engine = _engine(FastInterpreter)
        tracer = Tracer(engine)
        original = engine._pre_execute
        tracer.attach()
        assert engine._pre_execute != original
        tracer.detach()
        assert engine._pre_execute == original

    def test_double_attach_rejected(self):
        engine = _engine(FastInterpreter)
        tracer = Tracer(engine).attach()
        with pytest.raises(RuntimeError):
            tracer.attach()
        tracer.detach()

    def test_summary_histogram(self):
        engine = _engine(FastInterpreter)
        with Tracer(engine) as tracer:
            engine.run(max_insns=1000)
        summary = tracer.summary()
        assert summary["addi"] == 3
        assert summary["halt"] == 1

    def test_rejects_dbt_engine(self):
        # IncompatibleEngineError subclasses TypeError, so legacy
        # callers that caught TypeError keep working.
        with pytest.raises(IncompatibleEngineError, match="supports_insn_trace"):
            Tracer(_engine(DBTSimulator))

    def test_text_rendering(self):
        engine = _engine(FastInterpreter)
        with Tracer(engine) as tracer:
            engine.run(max_insns=1000)
        text = tracer.text()
        assert "0x00008000" in text


class TestBlockTrace:
    def test_block_stream(self):
        engine = _engine(DBTSimulator)
        records, result = trace_blocks(engine, run_kwargs={"max_insns": 1000})
        assert result.halted_ok
        # The first iteration runs inside the entry block (0x8000...),
        # the remaining two via the loop-head block at 0x8004.
        loop_blocks = [r for r in records if r.vaddr == 0x8004]
        assert len(loop_blocks) == 2
        assert sum(r.insn_count for r in records) >= engine.counters.instructions

    def test_rejects_interpreter(self):
        with pytest.raises(IncompatibleEngineError, match="supports_block_trace"):
            trace_blocks(_engine(FastInterpreter))
