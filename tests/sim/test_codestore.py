"""Persistent code store: roundtrip, keying, and corruption survival.

The store holds marshalled compiled-code payloads, so a damaged entry
is a real hazard (``marshal`` is not robust against truncation).  The
contract is that any corrupt entry reads as a miss, is unlinked, and
bumps the ``quarantined`` counter -- never a crash.
"""

import marshal
import pathlib

import pytest

from repro.sim.dbt import codestore
from repro.sim.dbt.codestore import CodeStore, block_key
from repro.sim.dbt.translator import TRANSLATION_MEMO
from tests.sim.util import run_asm
from repro.sim import DBTSimulator

HOT_BODY = """
    li r1, 50
loop:
    addi r2, r2, 3
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
"""


def _payload():
    source = "def make(block):\n    return lambda engine: None\n"
    code = compile(source, "<test block>", "exec")
    return (b"\x01\x02\x03\x04", 1, source, code)


class TestRoundtrip:
    def test_put_get(self, tmp_path):
        store = CodeStore(tmp_path)
        payload = _payload()
        key = block_key((True, False, 64), 0x8000, payload[0])
        store.put(key, payload)
        word_bytes, insn_count, source, code = store.get(key)
        assert word_bytes == payload[0]
        assert insn_count == 1
        namespace = {}
        exec(code, namespace)
        assert callable(namespace["make"](None))
        assert store.stats()["hits"] == 1

    def test_key_is_content_addressed(self):
        base = block_key((True, False, 64), 0x8000, b"\x00\x01")
        assert block_key((True, False, 64), 0x8000, b"\x00\x02") != base
        assert block_key((True, False, 64), 0x8004, b"\x00\x01") != base
        assert block_key((False, False, 64), 0x8000, b"\x00\x01") != base


class TestCorruption:
    def _stored(self, tmp_path):
        store = CodeStore(tmp_path)
        payload = _payload()
        key = block_key((True, False, 64), 0x8000, payload[0])
        store.put(key, payload)
        (path,) = (pathlib.Path(p) for p in store._entry_paths())
        return store, key, path

    @pytest.mark.parametrize(
        "damage",
        [b"", b"garbage not marshal at all", marshal.dumps((1, 2))],
        ids=["truncated", "garbage", "wrong-shape"],
    )
    def test_corrupt_entry_is_quarantined(self, tmp_path, damage):
        store, key, path = self._stored(tmp_path)
        path.write_bytes(damage)
        assert store.get(key) is None  # miss, not a crash
        assert not path.exists()  # unlinked
        stats = store.stats()
        assert stats["quarantined"] == 1
        assert stats["misses"] == 1

    def test_partial_truncation(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert store.get(key) is None
        assert store.stats()["quarantined"] == 1

    def test_engine_survives_corrupt_store(self, tmp_path):
        """End to end: a DBT run over a store full of garbage entries
        quarantines them all and still produces a correct run."""
        try:
            store = codestore.configure(str(tmp_path))
            TRANSLATION_MEMO.clear()
            engine, board, res = run_asm(DBTSimulator, HOT_BODY)
            assert res.halted_ok
            clean = engine.counters.snapshot()
            for path in store._entry_paths():
                pathlib.Path(path).write_bytes(b"\xff\xfebad")
            TRANSLATION_MEMO.clear()
            engine, board, res = run_asm(DBTSimulator, HOT_BODY)
            assert res.halted_ok
            assert engine.counters.snapshot() == clean
            assert store.stats()["quarantined"] > 0
        finally:
            codestore.configure(None)


class TestConfigure:
    def test_configure_none_disables(self, tmp_path):
        try:
            assert codestore.configure(str(tmp_path)) is not None
            assert codestore.active() is not None
            assert codestore.configure(None) is None
            assert codestore.active() is None
        finally:
            codestore.configure(None)

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_CACHE_DIR", str(tmp_path))
        try:
            codestore._CONFIGURED = False
            codestore._ACTIVE = None
            store = codestore.active()
            assert store is not None
            assert str(store.root) == str(tmp_path)
        finally:
            codestore.configure(None)

    def test_clear_removes_entries(self, tmp_path):
        store = CodeStore(tmp_path)
        payload = _payload()
        key = block_key((True, False, 64), 0x8000, payload[0])
        store.put(key, payload)
        assert store.stats()["entries"] == 1
        assert store.clear() == 1
        assert store.stats()["entries"] == 0
