"""DBT optimizer-tier tests: IR passes, superblocks, key hygiene.

Two kinds of guarantees live here:

- each peephole pass fires on its golden shape and provably does NOT
  fire when its safety precondition fails;
- the optimizer tier never leaks across cache identities (translation
  memo, persistent code store) and never changes guest counters, even
  through superblock side exits, SMC invalidation, and run limits.
"""

import inspect

import pytest

from repro.isa.assembler import assemble
from repro.isa.decoder import decode
from repro.isa.encoding import Cond, Op, encode
from repro.machine import Board
from repro.platform import VEXPRESS
from repro.sim import DBTSimulator
from repro.sim.dbt import DBTConfig
from repro.sim.dbt import codestore
from repro.sim.dbt.ir import lift_block
from repro.sim.dbt.passes import (
    eliminate_dead_flags,
    eliminate_dead_stores,
    fold_constants,
    fuse_pairs,
)
from repro.sim.dbt.translator import TRANSLATION_MEMO, Translator
from tests.sim.util import run_asm


def lift(words, vaddr=0x8000):
    """Hand-built IR: encoded words -> lifted nodes."""
    return lift_block([decode(word) for word in words], vaddr)


class TestFoldConstants:
    def test_movi_chain_folds_alu(self):
        nodes = lift(
            [
                encode(Op.MOVI, rd=0, imm=6),
                encode(Op.MOVI, rd=1, imm=7),
                encode(Op.ADD, rd=2, rn=0, rm=1),
                encode(Op.HALT),
            ]
        )
        assert fold_constants(nodes) == 3
        assert nodes[2].const_value == 13

    def test_movt_extends_known_immediate(self):
        nodes = lift(
            [
                encode(Op.MOVI, rd=0, imm=0x1234),
                encode(Op.MOVT, rd=0, imm=0xDEAD),
                encode(Op.HALT),
            ]
        )
        fold_constants(nodes)
        assert nodes[1].const_value == 0xDEAD1234

    def test_unknown_operand_must_not_fold(self):
        # A load's result is runtime data: nothing downstream may fold.
        nodes = lift(
            [
                encode(Op.LDR, rd=0, rn=1),
                encode(Op.ADDI, rd=2, rn=0, imm=1),
                encode(Op.HALT),
            ]
        )
        assert fold_constants(nodes) == 0
        assert all(node.const_value is None for node in nodes)

    def test_fold_mirrors_runtime_semantics(self):
        # Shift amounts are masked to 5 bits and division by zero
        # yields 0, exactly as the emitted Python computes them.
        nodes = lift(
            [
                encode(Op.MOVI, rd=0, imm=1),
                encode(Op.LSLI, rd=1, rn=0, imm=33),  # shift amount & 31
                encode(Op.MOVI, rd=2, imm=0),
                encode(Op.UDIV, rd=3, rn=0, rm=2),  # div by zero -> 0
                encode(Op.HALT),
            ]
        )
        fold_constants(nodes)
        assert nodes[1].const_value == 2
        assert nodes[3].const_value == 0


class TestDeadFlagElimination:
    def test_overwritten_cmp_dies(self):
        nodes = lift(
            [
                encode(Op.CMP, rn=0, rm=1),
                encode(Op.CMPI, rn=2, imm=0),
                encode(Op.B, imm=2, cond=Cond.EQ),
            ]
        )
        assert eliminate_dead_flags(nodes) == 1
        assert nodes[0].dead
        assert not nodes[1].dead

    def test_read_flags_must_not_die(self):
        nodes = lift(
            [
                encode(Op.CMP, rn=0, rm=1),
                encode(Op.B, imm=2, cond=Cond.NE),
            ]
        )
        assert eliminate_dead_flags(nodes) == 0

    def test_observation_point_keeps_flags_live(self):
        # The store may fault; the fault handler observes the flags the
        # first CMP wrote, so it must survive the overwrite after it.
        nodes = lift(
            [
                encode(Op.CMP, rn=0, rm=1),
                encode(Op.STR, rd=2, rn=3),
                encode(Op.CMPI, rn=2, imm=0),
                encode(Op.B, imm=2, cond=Cond.EQ),
            ]
        )
        assert eliminate_dead_flags(nodes) == 0


class TestDeadStoreElimination:
    def test_overwritten_def_dies(self):
        nodes = lift(
            [
                encode(Op.MOVI, rd=0, imm=1),
                encode(Op.MOVI, rd=0, imm=2),
                encode(Op.HALT),
            ]
        )
        assert eliminate_dead_stores(nodes) == 1
        assert nodes[0].dead
        assert not nodes[1].dead

    def test_read_before_overwrite_must_not_die(self):
        nodes = lift(
            [
                encode(Op.MOVI, rd=0, imm=1),
                encode(Op.STR, rd=0, rn=1),  # reads r0 (and may fault)
                encode(Op.MOVI, rd=0, imm=2),
                encode(Op.HALT),
            ]
        )
        assert eliminate_dead_stores(nodes) == 0


class TestPairFusion:
    def test_addi_feeding_load_fuses(self):
        nodes = lift(
            [
                encode(Op.ADDI, rd=1, rn=1, imm=4),
                encode(Op.LDR, rd=0, rn=1),
                encode(Op.HALT),
            ]
        )
        assert fuse_pairs(nodes) == 1
        assert nodes[0].addr_temp
        assert nodes[1].addr_from is nodes[0]

    def test_base_mismatch_must_not_fuse(self):
        nodes = lift(
            [
                encode(Op.ADDI, rd=1, rn=2, imm=4),
                encode(Op.LDR, rd=0, rn=3),  # base is not the ADDI's def
                encode(Op.HALT),
            ]
        )
        assert fuse_pairs(nodes) == 0

    def test_cmp_feeding_conditional_branch_fuses(self):
        nodes = lift(
            [
                encode(Op.CMPI, rn=0, imm=0),
                encode(Op.B, imm=2, cond=Cond.EQ),
            ]
        )
        assert fuse_pairs(nodes) == 1
        assert nodes[0].fuse_branch
        assert nodes[1].fused_cmp is nodes[0]

    def test_unconditional_branch_must_not_fuse(self):
        # An AL branch never reads the comparison; fusing it would
        # change nothing but the annotation must not appear.
        nodes = lift(
            [
                encode(Op.CMP, rn=0, rm=1),
                encode(Op.B, imm=2, cond=Cond.AL),
            ]
        )
        assert fuse_pairs(nodes) == 0

    def test_folded_addi_must_not_fuse(self):
        # Once the ADDI folds to a literal the access address is a
        # constant too; the `_a` temp would be dead weight.
        nodes = lift(
            [
                encode(Op.MOVI, rd=1, imm=0x100),
                encode(Op.ADDI, rd=1, rn=1, imm=4),
                encode(Op.LDR, rd=0, rn=1),
                encode(Op.HALT),
            ]
        )
        fold_constants(nodes)
        assert fuse_pairs(nodes) == 0


def _block_sources(asm_body, vaddrs=(0x8000,), **fields):
    """Translate the given block starts under a config and return
    their concatenated generated source."""
    board = Board(VEXPRESS)
    board.load(assemble(".org 0x8000\n_start:\n%s\n" % asm_body))
    translator = Translator(DBTConfig(**fields))
    return "\n".join(
        translator.translate(board.memory, vaddr, vaddr).source for vaddr in vaddrs
    )


#: One block exercising every codegen-sensitive shape on one page:
#: foldable constants, an address pair over a runtime-unknown base (the
#: load's result), a fusible compare+branch, and a same-page chainable
#: conditional terminal.
_PEEPHOLE_BODY = """
    movi r0, 6
    movi r1, 7
    add r2, r0, r1
    ldr r4, [sp]
    addi r4, r4, 4
    ldr r3, [r4]
    cmpi r3, 0
    bne _start
"""

#: ... and one whose terminal branches across a page boundary.
_CROSS_PAGE_BODY = """
    nop
    nop
    nop
    nop
    b far
.page
far:
    halt #0
"""


class TestOptimizedEmission:
    def test_fused_source_is_smaller(self):
        TRANSLATION_MEMO.clear()
        direct = _block_sources(_PEEPHOLE_BODY, opt_level=0)
        TRANSLATION_MEMO.clear()
        optimized = _block_sources(_PEEPHOLE_BODY, opt_level=1)
        assert len(optimized) < len(direct)
        assert "_a = (r[4] + 4)" in optimized  # fused address pair
        assert "condition_holds" in direct
        assert "condition_holds" not in optimized  # inlined branch cond
        assert "r[2] = 13" in optimized  # folded constant chain


class TestKeyCompleteness:
    """Every config field that changes generated code must be part of
    the translation key (and therefore of the code-store address)."""

    #: Fields whose toggling must change the generated source for the
    #: probe programs below.  A new DBTConfig field that affects
    #: codegen must be added here AND to translation_key().
    CODEGEN_FIELDS = {"chain_enabled", "chain_cross_page", "max_block_insns", "opt_level"}

    VARIANTS = {
        "chain_enabled": False,
        "chain_cross_page": True,
        "max_block_insns": 3,
        "tlb_bits": 9,
        "tcache_capacity": 5,
        "cost_overrides": {"instructions": 123.0},
        "version": "v9.9.9",
        "asid_tagged": True,
        "memoize": False,
        "opt_level": 1,
    }

    def test_variant_table_covers_every_field(self):
        params = set(inspect.signature(DBTConfig.__init__).parameters) - {"self"}
        assert set(self.VARIANTS) == params

    @pytest.mark.parametrize("field", sorted(VARIANTS))
    def test_codegen_sensitive_fields_are_keyed(self, field):
        def sources(**fields):
            TRANSLATION_MEMO.clear()
            return _block_sources(_PEEPHOLE_BODY, **fields) + _block_sources(
                _CROSS_PAGE_BODY, **fields
            )

        base_cfg = DBTConfig()
        variant_cfg = DBTConfig(**{field: self.VARIANTS[field]})
        differs = sources() != sources(**{field: self.VARIANTS[field]})
        assert differs == (field in self.CODEGEN_FIELDS)
        if differs:
            assert base_cfg.translation_key() != variant_cfg.translation_key()
            word_bytes = b"\x00\x00\x00\x00"
            assert codestore.block_key(
                base_cfg.translation_key(), 0x8000, word_bytes
            ) != codestore.block_key(
                variant_cfg.translation_key(), 0x8000, word_bytes
            )


class TestOptLevelIsolation:
    def test_memo_entries_are_distinct_per_level(self):
        board = Board(VEXPRESS)
        board.load(
            assemble(
                ".org 0x8000\n_start:\n    movi r0, 6\n    movi r1, 7\n"
                "    add r2, r0, r1\n    halt #0\n"
            )
        )
        TRANSLATION_MEMO.clear()
        plain = Translator(DBTConfig(opt_level=0))
        opt = Translator(DBTConfig(opt_level=1))
        block_plain = plain.translate(board.memory, 0x8000, 0x8000)
        block_opt = opt.translate(board.memory, 0x8000, 0x8000)
        assert block_plain.source != block_opt.source
        assert len(TRANSLATION_MEMO) == 2
        # Memo hits keep serving the level they were lowered at.
        assert plain.translate(board.memory, 0x8000, 0x8000).source == block_plain.source
        assert opt.translate(board.memory, 0x8000, 0x8000).source == block_opt.source
        TRANSLATION_MEMO.clear()

    def test_code_store_addresses_are_distinct_per_level(self):
        word_bytes = b"\x12\x34\x56\x78"
        keys = {
            codestore.block_key(DBTConfig(opt_level=lvl).translation_key(), 0x8000, word_bytes)
            for lvl in (0, 1, 2)
        }
        assert len(keys) == 3

    def test_superblock_address_differs_from_plain_block(self):
        # Same head bytes, but the trace's continuation segment is part
        # of the identity: a superblock never aliases the plain block.
        key = DBTConfig(opt_level=2).translation_key()
        head = b"\x12\x34\x56\x78"
        plain = codestore.block_key(key, 0x8000, head)
        traced = codestore.block_key(key, 0x8000, head, ((8, b"\x9a\xbc\xde\xf0"),))
        assert plain != traced


#: Bottom-branching loop: the tail's unconditional back-edge forms a
#: two-segment superblock at opt_level 2.
_LOOP_BODY = """
    li r0, 0
    li r1, 500
head:
    cmp r0, r1
    beq done
    addi r0, r0, 1
    b head
done:
    halt #0
"""

#: Same loop shape, but the body rewrites an instruction of its own
#: superblock (with identical bytes) every iteration, invalidating the
#: trace mid-execution.
_SMC_LOOP_BODY = """
    li r5, 10
    li r6, tgt
    li r1, 0
head:
    cmpi r5, 0
    beq done
    subi r5, r5, 1
    str r1, [r6]
tgt:
    nop
    b head
done:
    halt #0
"""


def _run_level(body, opt_level, max_insns=200_000):
    TRANSLATION_MEMO.clear()
    engine, board, res = run_asm(
        DBTSimulator, body, config=DBTConfig(opt_level=opt_level), max_insns=max_insns
    )
    return engine, board, res


class TestSuperblocks:
    def test_trace_forms_on_loop_back_edge(self):
        engine, _board, res = _run_level(_LOOP_BODY, 2)
        assert res.halted_ok
        entries = list(TRANSLATION_MEMO._entries.values())
        traced = [entry for entry in entries if entry.segments]
        assert len(traced) == 1
        assert traced[0].n_crossings == 1
        # The compiled unit inlines the tail: its source carries the
        # crossing's chain-follow accounting and the shared tail block.
        assert any(
            block.source and "hb = nb" in block.source
            for block in engine.translation_cache._blocks.values()
        )

    def test_no_trace_without_chaining(self):
        # Crossings replay *chained* dispatch accounting; with chaining
        # disabled level 2 must degrade to peephole-only lowering.
        TRANSLATION_MEMO.clear()
        engine, _board, res = run_asm(
            DBTSimulator,
            _LOOP_BODY,
            config=DBTConfig(opt_level=2, chain_enabled=False),
        )
        assert res.halted_ok
        assert not any(e.segments for e in TRANSLATION_MEMO._entries.values())

    def test_loop_counters_bit_identical(self):
        base = _run_level(_LOOP_BODY, 0)
        for level in (1, 2):
            engine, board, res = _run_level(_LOOP_BODY, level)
            assert res.halted_ok
            assert board.cpu.regs[0] == 500
            assert engine.counters.snapshot() == base[0].counters.snapshot()
            assert res.exit_reason == base[2].exit_reason

    def test_limit_side_exit_counters_bit_identical(self):
        # An odd limit lands mid-loop, exercising the crossing's
        # run-limit side exit; the instruction count must stop at the
        # same point the baseline dispatcher stops.
        base = _run_level(_LOOP_BODY, 0, max_insns=101)
        for level in (1, 2):
            engine, _board, res = _run_level(_LOOP_BODY, level, max_insns=101)
            assert res.exit_reason == base[2].exit_reason
            assert engine.counters.snapshot() == base[0].counters.snapshot()

    def test_smc_invalidates_trace_and_counters_match(self):
        base_engine, base_board, base_res = _run_level(_SMC_LOOP_BODY, 0)
        assert base_res.halted_ok
        engine, board, res = _run_level(_SMC_LOOP_BODY, 2)
        assert res.halted_ok
        assert board.cpu.regs[5] == 0
        assert engine.counters.smc_invalidations >= 9
        assert engine.counters.snapshot() == base_engine.counters.snapshot()
