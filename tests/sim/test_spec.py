"""EngineSpec layer tests.

The contracts under test:

- payload round-trips are identities for every registered engine;
- structural and pricing fields are kept apart: pricing never leaks
  into structural or cache keys, but always survives serialization;
- object-valued options are rejected loudly instead of silently
  splitting keys on their repr;
- the registry is the single source of truth: simulator classes, cost
  models and arch column layouts all agree with it, and unknown-engine
  errors are worded identically at every entry point.
"""

import pytest

from repro.arch import ARM, X86
from repro.errors import IncompatibleEngineError
from repro.machine import Board
from repro.platform import PCPLAT, VEXPRESS
from repro.sim import SIMULATOR_CLASSES, cost_model_for, create_simulator
from repro.sim.dbt.config import DBTConfig
from repro.sim.dbt.versions import dbt_config_for_version
from repro.sim.spec import (
    DBTSpec,
    DetailedSpec,
    EngineSpec,
    InterpSpec,
    NativeSpec,
    SPEC_CLASSES,
    VirtSpec,
    as_engine_spec,
    engines_for_arch,
    spec_class_for,
    spec_for,
)

ALL_ENGINES = sorted(SPEC_CLASSES)


class TestRegistry:
    def test_simulator_classes_derive_from_specs(self):
        assert set(SIMULATOR_CLASSES) == set(SPEC_CLASSES)
        for name, spec_class in SPEC_CLASSES.items():
            assert SIMULATOR_CLASSES[name] is spec_class.simulator_class
            assert spec_class.engine == name

    def test_registry_order_is_figure_column_order(self):
        assert tuple(SPEC_CLASSES) == (
            DBTSpec.engine,
            InterpSpec.engine,
            DetailedSpec.engine,
            VirtSpec.engine,
            NativeSpec.engine,
        )

    def test_engines_for_arch(self):
        assert engines_for_arch("arm") == tuple(SPEC_CLASSES)
        x86 = engines_for_arch(X86)
        assert InterpSpec.engine not in x86
        assert DetailedSpec.engine not in x86
        assert DBTSpec.engine in x86 and NativeSpec.engine in x86

    def test_unknown_engine_error_worded_identically(self):
        board = Board(VEXPRESS)
        messages = set()
        with pytest.raises(KeyError) as create_err:
            create_simulator("bogus", board, ARM)
        messages.add(str(create_err.value))
        with pytest.raises(KeyError) as cost_err:
            cost_model_for("bogus", ARM)
        messages.add(str(cost_err.value))
        with pytest.raises(KeyError) as spec_err:
            spec_class_for("bogus")
        messages.add(str(spec_err.value))
        assert len(messages) == 1
        assert "unknown simulator 'bogus'" in messages.pop()


class TestPayloadRoundTrip:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_default_spec_round_trips_identically(self, engine):
        spec = spec_for(engine)
        clone = EngineSpec.from_payload(spec.to_payload())
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert clone.to_payload() == spec.to_payload()
        assert clone.structural_key() == spec.structural_key()
        assert clone.cache_key_payload() == spec.cache_key_payload()

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_delta_payload_rebuild_preserves_structural_key(self, engine):
        """The manifest transport contract: delta_payload -> rebuild via
        from_delta_payload is a structural identity for every registry
        engine, so manifest-declared engines hash to the same cells as
        programmatically built ones."""
        spec = spec_for(engine)
        clone = EngineSpec.from_delta_payload(spec.delta_payload())
        assert clone == spec
        assert clone.structural_key() == spec.structural_key()
        assert clone.cache_key_payload() == spec.cache_key_payload()

    def test_delta_payload_rebuild_with_non_default_fields(self):
        for spec in (
            DBTSpec.from_config(dbt_config_for_version("v2.5.0-rc2", "arm")),
            DBTSpec(tlb_bits=7, chain_enabled=False),
            InterpSpec(tlb_capacity=16),
        ):
            clone = EngineSpec.from_delta_payload(spec.delta_payload())
            assert clone == spec
            assert clone.structural_key() == spec.structural_key()

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    @pytest.mark.parametrize("arch", [ARM, X86], ids=["arm", "x86"])
    def test_cost_model_under_both_arch_profiles(self, engine, arch):
        spec = EngineSpec.from_payload(spec_for(engine).to_payload())
        model = spec.cost_model(arch)
        assert model.evaluate({"instructions": 100}) >= 0

    def test_non_default_dbt_spec_round_trips(self):
        spec = DBTSpec(
            tlb_bits=7,
            chain_enabled=False,
            cost_overrides={"translations": 9000.0},
            version="v1.7.0",
        )
        clone = EngineSpec.from_payload(spec.to_payload())
        assert clone == spec
        assert clone.cost_overrides == {"translations": 9000.0}
        assert clone.version == "v1.7.0"

    def test_dbt_config_round_trips_through_spec(self):
        config = dbt_config_for_version("v2.4.1", "arm")
        spec = DBTSpec.from_config(config)
        rebuilt = spec.to_config()
        assert rebuilt.__dict__ == config.__dict__


class TestStructuralVsPricing:
    def test_cost_overrides_absent_from_structural_identity(self):
        cheap = DBTSpec()
        priced = DBTSpec(cost_overrides={"translations": 1.0}, version="vX")
        assert cheap.structural_key() == priced.structural_key()
        assert cheap.cache_key_payload() == priced.cache_key_payload()
        assert cheap != priced  # full identity still distinguishes them

    def test_structural_fields_change_the_key(self):
        assert DBTSpec(tlb_bits=7).structural_key() != DBTSpec().structural_key()
        assert (
            InterpSpec(tlb_capacity=128).structural_key()
            != InterpSpec().structural_key()
        )

    def test_separately_built_specs_are_equal(self):
        a = DBTSpec.from_config(DBTConfig(tlb_bits=7))
        b = DBTSpec.from_config(DBTConfig(tlb_bits=7))
        assert a == b
        assert hash(a) == hash(b)
        assert a.structural_key() == b.structural_key()

    def test_replace_revalidates(self):
        spec = InterpSpec().replace(tlb_capacity=256)
        assert spec.tlb_capacity == 256
        with pytest.raises(ValueError):
            DetailedSpec().replace(mode="cycle-exact")


class TestValidation:
    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown engine option"):
            spec_for("simit", bogus=1)

    def test_object_valued_option_rejected(self):
        class Shape:
            pass

        with pytest.raises(ValueError, match="tlb_capacity"):
            InterpSpec(tlb_capacity=Shape())

    def test_object_inside_dict_rejected(self):
        with pytest.raises(ValueError, match="cost_overrides"):
            DBTSpec(cost_overrides={"translations": object()})

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(ValueError, match="keys must be strings"):
            DBTSpec(cost_overrides={1: 2.0})

    def test_detailed_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            DetailedSpec(mode="warp")


class TestLegacyAdapter:
    def test_spec_passthrough(self):
        spec = InterpSpec()
        assert as_engine_spec(spec) is spec

    def test_spec_with_legacy_arguments_rejected(self):
        with pytest.raises(ValueError, match="inside the EngineSpec"):
            as_engine_spec(InterpSpec(), sim_kwargs={"tlb_capacity": 1})
        with pytest.raises(ValueError, match="inside the EngineSpec"):
            as_engine_spec(DBTSpec(), dbt_config=DBTConfig())

    def test_dbt_config_entry_wins_over_dbt_config_argument(self):
        winner = DBTConfig(tlb_bits=7)
        spec = as_engine_spec(
            "qemu-dbt", dbt_config=DBTConfig(), sim_kwargs={"config": winner}
        )
        assert spec.tlb_bits == 7

    def test_dbt_config_plus_field_options_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            as_engine_spec(
                "qemu-dbt",
                dbt_config=DBTConfig(),
                sim_kwargs={"asid_tagged": True},
            )

    def test_non_dbt_engine_ignores_dbt_config(self):
        spec = as_engine_spec("simit", dbt_config=DBTConfig(tlb_bits=7))
        assert spec == InterpSpec()


class TestBuildAndCapabilities:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_build_constructs_the_registered_class(self, engine):
        spec = spec_for(engine)
        platform = VEXPRESS if "arm" in spec.evaluated_archs else PCPLAT
        sim = spec.build(Board(platform), ARM)
        assert isinstance(sim, SIMULATOR_CLASSES[engine])

    def test_build_applies_structural_fields(self):
        sim = InterpSpec(tlb_capacity=16).build(Board(VEXPRESS), ARM)
        assert sim._dtlb.capacity == 16
        dbt = DBTSpec(tlb_bits=6).build(Board(VEXPRESS), ARM)
        assert dbt.config.tlb_bits == 6

    def test_capability_flags_follow_execution_model(self):
        # The whole functional-core family is per-instruction traceable;
        # only the DBT engine executes at block granularity.
        assert InterpSpec().supports_insn_trace
        assert not InterpSpec().supports_block_trace
        assert VirtSpec().supports_insn_trace
        assert DBTSpec().supports_block_trace
        assert not DBTSpec().supports_insn_trace

    def test_describe_is_registry_driven(self):
        info = DBTSpec().describe()
        assert info["engine"] == DBTSpec.engine
        assert info["class"] == "DBTSimulator"
        assert "cost_overrides" in info["pricing"]
        assert "cost_overrides" not in info["structural"]


class TestIncompatibleEngineError:
    def test_is_a_type_error_for_legacy_callers(self):
        error = IncompatibleEngineError("Tracer", "qemu-dbt", hint="why")
        assert isinstance(error, TypeError)
        assert "Tracer cannot attach to engine 'qemu-dbt'" in str(error)
        assert "why" in str(error)

    def test_pickles_by_reduce(self):
        import pickle

        error = pickle.loads(
            pickle.dumps(IncompatibleEngineError("Debugger", "native"))
        )
        assert error.tool == "Debugger"
        assert error.engine == "native"
