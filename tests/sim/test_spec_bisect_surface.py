"""Spec-layer surface for bisection: field diffs, ablation pairs, and
the sweep's ordered version axis."""

import pytest

from repro.analysis.sweep import version_axis
from repro.sim.dbt.versions import QEMU_VERSIONS
from repro.sim.spec import DBTSpec, InterpSpec, SPEC_CLASSES


class TestDiff:
    def test_equal_specs_have_empty_diff(self):
        assert DBTSpec().diff(DBTSpec()) == {}

    def test_diff_reports_both_sides_per_field(self):
        mine = DBTSpec(tlb_bits=7, chain_enabled=False)
        theirs = DBTSpec()
        assert mine.diff(theirs) == {
            "tlb_bits": (7, 8),
            "chain_enabled": (False, True),
        }

    def test_cross_engine_diff_raises(self):
        with pytest.raises(ValueError, match="different engines"):
            DBTSpec().diff(InterpSpec())


class TestBisectableFields:
    def test_ablation_pairs_are_structural_and_valid(self):
        for name, spec_class in SPEC_CLASSES.items():
            structural = {f.name for f in spec_class.structural_fields()}
            default = spec_class()
            for field, (low, high) in spec_class.bisectable_fields().items():
                assert field in structural, (name, field)
                assert low != high
                # Both settings must construct valid specs.
                default.replace(**{field: low})
                default.replace(**{field: high})

    def test_dbt_declares_the_headline_fields(self):
        fields = DBTSpec.bisectable_fields()
        assert fields["tlb_bits"] == (7, 8)  # the v2.0.0 step
        assert "chain_enabled" in fields
        assert "max_block_insns" in fields


class TestVersionAxis:
    def test_axis_is_ordered_and_complete(self):
        axis = version_axis("arm")
        assert tuple(v for v, _spec in axis) == QEMU_VERSIONS
        assert all(spec.engine == "qemu-dbt" for _v, spec in axis)

    def test_v2_boundary_changes_tlb_geometry(self):
        specs = dict(version_axis("arm"))
        diff = specs["v1.7.2"].diff(specs["v2.0.0"])
        assert diff["tlb_bits"] == (7, 8)
