"""DBT engine structural tests: translation, chaining, SMC, caching."""

import pytest

from repro.arch import ARM
from repro.isa.assembler import assemble
from repro.machine import Board
from repro.platform import VEXPRESS
from repro.sim import DBTSimulator
from repro.sim.dbt import DBTConfig, TranslationCache, TranslatedBlock
from repro.sim.dbt.translator import Translator


def run_dbt(body, config=None, max_insns=200_000):
    source = ".org 0x8000\n_start:\n    li sp, 0x100000\n%s\n" % body
    board = Board(VEXPRESS)
    board.load(assemble(source))
    engine = DBTSimulator(board, arch=ARM, config=config)
    result = engine.run(max_insns=max_insns)
    return engine, board, result


class TestTranslation:
    def test_blocks_translated_once_for_hot_loop(self):
        engine, _board, res = run_dbt(
            """
    movi r1, 100
loop:
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
"""
        )
        assert res.halted_ok
        # Prologue block, loop block, exit block: a handful at most.
        assert engine.counters.translations <= 4
        assert engine.counters.block_executions >= 100

    def test_block_never_crosses_page(self):
        board = Board(VEXPRESS)
        prog = assemble(".org 0x8ff8\n_start:\n" + "    nop\n" * 8 + "    halt #0\n")
        board.load(prog)
        engine = DBTSimulator(board, arch=ARM)
        translator = Translator(engine.config)
        block = translator.translate(board.memory, 0x8FF8, 0x8FF8)
        assert block.insn_count == 2  # stops at the 0x9000 boundary

    def test_max_block_insns(self):
        board = Board(VEXPRESS)
        prog = assemble(".org 0x8000\n_start:\n" + "    nop\n" * 100 + "    halt #0\n")
        board.load(prog)
        config = DBTConfig(max_block_insns=16)
        translator = Translator(config)
        block = translator.translate(board.memory, 0x8000, 0x8000)
        assert block.insn_count == 16

    def test_generated_source_recorded(self):
        engine, _board, _res = run_dbt("    halt #0\n")
        cache = engine.translation_cache
        assert len(cache) >= 1


class TestChaining:
    def test_intra_page_loop_chains(self):
        engine, _board, _res = run_dbt(
            """
    movi r1, 50
loop:
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
"""
        )
        assert engine.counters.chain_follows > 40
        # Chained transitions bypass the dispatcher.
        assert engine.counters.slow_dispatches < 10

    def test_chaining_disabled(self):
        config = DBTConfig(chain_enabled=False)
        engine, _board, _res = run_dbt(
            """
    movi r1, 50
loop:
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
""",
            config=config,
        )
        assert engine.counters.chain_follows == 0
        assert engine.counters.slow_dispatches > 50

    def test_cross_page_direct_branch_not_chained(self):
        engine, _board, res = run_dbt(
            """
    movi r1, 30
loop:
    b far
back:
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
.page
far:
    b back
"""
        )
        assert res.halted_ok
        # The loop <-> far transitions cross pages: all dispatched.
        assert engine.counters.branches_direct_inter == 60
        assert engine.counters.slow_dispatches >= 60

    def test_cross_page_chaining_opt_in(self):
        config = DBTConfig(chain_cross_page=True)
        engine, _board, res = run_dbt(
            """
    movi r1, 30
loop:
    b far
back:
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
.page
far:
    b back
""",
            config=config,
        )
        assert res.halted_ok
        assert engine.counters.chain_follows > 50


class TestSelfModifyingCode:
    SMC_BODY = """
    movi r5, 20
outer:
    li r0, patchme
    li r1, 0
    str r1, [r0]          ; rewrite the nop with a nop
    bl patchme
    subi r5, r5, 1
    cmpi r5, 0
    bne outer
    halt #0
.page
patchme:
    nop
    addi r4, r4, 1
    br lr
"""

    def test_rewrite_forces_retranslation(self):
        engine, board, res = run_dbt(self.SMC_BODY)
        assert res.halted_ok
        assert board.cpu.regs[4] == 20
        # Every iteration invalidates and retranslates the patched page.
        assert engine.counters.smc_invalidations >= 19
        assert engine.counters.translations >= 20
        assert engine.counters.code_writes >= 19

    def test_modified_code_takes_effect(self):
        # Patch the first word of `f` from `movi r4, 1` to `movi r4, 2`.
        engine, board, res = run_dbt(
            """
    bl f                   ; translate the original
    mov r6, r4
    li r0, f
    li r1, 0x19400002      ; movi r4, 2
    str r1, [r0]
    bl f
    halt #0
.page
f:
    movi r4, 1
    br lr
"""
        )
        assert res.halted_ok
        assert board.cpu.regs[6] == 1
        assert board.cpu.regs[4] == 2


class TestTranslationCache:
    def test_insert_and_get(self):
        cache = TranslationCache()
        block = TranslatedBlock(0x1000, 0x1000, 4, fn=lambda s: None)
        cache.insert(block)
        assert cache.get(0x1000, 0x1000) is block
        assert cache.get(0x1000, 0x2000) is None

    def test_invalidate_page(self):
        cache = TranslationCache()
        a = TranslatedBlock(0x1000, 0x1000, 4, fn=None)
        b = TranslatedBlock(0x1010, 0x1010, 4, fn=None)
        c = TranslatedBlock(0x2000, 0x2000, 4, fn=None)
        for block in (a, b, c):
            cache.insert(block)
        assert cache.invalidate_page(0x1) == 2
        assert not a.valid and not b.valid and c.valid
        assert cache.get(0x1000, 0x1000) is None
        assert cache.get(0x2000, 0x2000) is c

    def test_invalidation_clears_chain_slots(self):
        a = TranslatedBlock(0x1000, 0x1000, 4, fn=None)
        b = TranslatedBlock(0x1010, 0x1010, 4, fn=None)
        a.set_succ(0, b)
        b.invalidate()
        assert b.succ_taken is None
        assert not b.valid

    def test_capacity_overflow_flushes_everything(self):
        cache = TranslationCache(capacity=2)
        blocks = [TranslatedBlock(0x1000 * i, 0x1000 * i, 1, fn=None) for i in range(1, 4)]
        for block in blocks:
            cache.insert(block)
        assert cache.full_flushes == 1
        assert len(cache) == 1

    def test_reinsert_invalidates_old(self):
        cache = TranslationCache()
        old = TranslatedBlock(0x1000, 0x1000, 4, fn=None)
        new = TranslatedBlock(0x1000, 0x1000, 4, fn=None)
        cache.insert(old)
        cache.insert(new)
        assert not old.valid
        assert cache.get(0x1000, 0x1000) is new


class TestSoftmmuTLB:
    def test_tlb_flush_resets_slots(self):
        engine, _board, _res = run_dbt(
            """
    li r1, 0x2000000
    ldr r0, [r1]
    mcr r0, p15, c7
    ldr r0, [r1]
    halt #0
"""
        )
        # MMU is off here, so no TLB traffic -- but the flush op counts.
        assert engine.counters.tlb_flushes == 1

    def test_direct_mapped_conflicts(self):
        # Two pages whose vpage indices collide in a tiny 4-slot TLB.
        config = DBTConfig(tlb_bits=2)
        engine, _board, res = run_dbt(
            """
    li r0, 0x4000
    mcr r0, p15, c6        ; VBAR (unused but harmless)
    ; build page tables: one section mapping RAM 0..1MB identity
    li r0, 0x1000000
    li r1, 0x21           ; section entry, AP user RW? (AP=2: 0x20|0x1)
    str r1, [r0]
    li r1, 0x2000021      ; map vaddr 2MB -> 32MB region? keep identity:
    li r0, 0x1000000      ; overwritten below
    ; map sections for 0x00000000 and the two test pages' megabytes
    li r0, 0x1000000
    li r1, 0x0000021
    str r1, [r0]
    li r0, 0x1000008      ; L1 slot for 0x00200000
    li r1, 0x0200021
    str r1, [r0]
    ; enable MMU
    li r0, 0x1000000
    mcr r0, p15, c2        ; TTBR
    movi r0, 1
    mcr r0, p15, c1        ; SCTLR
    ; alternate accesses to 0x200000 and 0x204000 (vpages 0x200, 0x204
    ; collide modulo 4)
    li r1, 0x200000
    li r2, 0x204000
    movi r5, 16
ping:
    ldr r3, [r1]
    ldr r3, [r2]
    subi r5, r5, 1
    cmpi r5, 0
    bne ping
    halt #0
""",
            config=config,
        )
        assert res.halted_ok
        assert engine.counters.tlb_evictions >= 30
        assert engine.counters.tlb_misses >= 31


class TestDBTFeatureSummary:
    def test_matches_figure4_row(self):
        board = Board(VEXPRESS)
        engine = DBTSimulator(board, arch=ARM)
        summary = engine.feature_summary()
        assert summary["Execution Model"] == "DBT"
        assert summary["Control Flow (Intra-Page)"] == "Block Chaining"
        assert summary["Control Flow (Inter-Page)"] == "Block Cache"
        assert summary["Synchronous Exceptions"] == "Side Exit"

    def test_chaining_off_changes_summary(self):
        board = Board(VEXPRESS)
        engine = DBTSimulator(board, arch=ARM, config=DBTConfig(chain_enabled=False))
        assert engine.feature_summary()["Control Flow (Intra-Page)"] == "Block Cache"
