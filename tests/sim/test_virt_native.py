"""Virtualization (KVM-like) and native cost-model tests."""

from repro.arch import ARM, X86
from repro.machine import Board
from repro.platform import PCPLAT, VEXPRESS
from repro.sim import NativeMachine, VirtSimulator
from tests.sim.util import run_asm


def modeled(engine):
    return engine.modeled_ns(engine.counters.snapshot())


class TestVmExits:
    def test_mmio_counts_as_vm_exit(self):
        engine, _board, res = run_asm(
            VirtSimulator,
            "    li r1, 0xf0002000\n    ldr r0, [r1]\n    ldr r0, [r1]\n    halt #0\n",
        )
        assert res.halted_ok
        assert engine.counters.vm_exits == 2

    def test_compute_does_not_exit(self):
        engine, _board, _res = run_asm(
            VirtSimulator,
            "    movi r1, 9\n    muli r1, r1, 9\n    halt #0\n",
        )
        assert engine.counters.vm_exits == 0

    def test_x86_undef_is_a_trap(self):
        # On the x86 profile, undefined instructions count as vm-exits.
        engine, _board, _res = run_asm(
            VirtSimulator,
            """
    li r0, 0x5000
    mcr r0, p15, c6
    und
    halt #0
.org 0x5000
    b _start
    b uh
uh:
    sret
""",
            platform=PCPLAT,
            arch=X86,
        )
        assert engine.counters.vm_exits >= 1

    def test_arm_undef_is_not_a_trap(self):
        engine, _board, _res = run_asm(
            VirtSimulator,
            """
    li r0, 0x5000
    mcr r0, p15, c6
    und
    halt #0
.org 0x5000
    b _start
    b uh
uh:
    sret
""",
            platform=VEXPRESS,
            arch=ARM,
        )
        assert engine.counters.vm_exits == 0


class TestCostAsymmetries:
    UNDEF_BODY = """
    li r0, 0x5000
    mcr r0, p15, c6
    und
    und
    und
    und
    halt #0
.org 0x5000
    b _start
    b uh
uh:
    sret
"""

    def test_undef_cheap_on_arm_kvm_expensive_on_x86_kvm(self):
        arm, _b, _r = run_asm(VirtSimulator, self.UNDEF_BODY, platform=VEXPRESS, arch=ARM)
        x86, _b, _r = run_asm(VirtSimulator, self.UNDEF_BODY, platform=PCPLAT, arch=X86)
        arm_cost = arm.cost_model.costs["undefs"]
        x86_cost = x86.cost_model.costs["undefs"]
        assert x86_cost > 10 * arm_cost

    def test_mmio_trap_dwarfs_native(self):
        body = "    li r1, 0xf0002000\n    ldr r0, [r1]\n    halt #0\n"
        virt, _b, _r = run_asm(VirtSimulator, body)
        native, _b, _r = run_asm(NativeMachine, body)
        assert modeled(virt) > 20 * modeled(native)

    def test_native_compute_is_cheapest(self):
        # Straight-line compute: no branches, so the ARM-KVM control
        # flow penalty (paper Section III-B.2) does not apply.
        body = "    movi r1, 7\n" + "    muli r1, r1, 3\n" * 120 + "    halt #0\n"
        from repro.sim import FastInterpreter

        times = {}
        for cls in (NativeMachine, VirtSimulator, FastInterpreter):
            engine, _b, _r = run_asm(cls, body)
            times[cls.name] = modeled(engine)
        assert times["native"] < times["qemu-kvm"] < times["simit"]

    def test_arm_kvm_branches_are_pathological(self):
        # The paper's ARM KVM is slower than the fast interpreter on
        # branchy code (Figure 7, Control Flow rows).
        body = """
    movi r1, 200
loop:
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
"""
        from repro.sim import FastInterpreter

        kvm, _b, _r = run_asm(VirtSimulator, body)
        interp, _b, _r = run_asm(FastInterpreter, body)
        assert modeled(kvm) > modeled(interp)

    def test_x86_native_coprocessor_reset_is_slow(self):
        body_x86 = "    mcr r0, p1, c1\n" * 8 + "    halt #0\n"
        engine, _b, _r = run_asm(NativeMachine, body_x86, platform=PCPLAT, arch=X86)
        per_op = engine.cost_model.costs["coproc_writes"]
        assert per_op > 1000  # FNINIT-style resets are notoriously slow


class TestHardwareTLBSizing:
    def test_large_tlb_absorbs_moderate_working_sets(self):
        body = """
    li r1, 0x2000000
    movi r2, 64
touch:
    ldr r0, [r1]
    addi r1, r1, 0x1000
    subi r2, r2, 1
    cmpi r2, 0
    bne touch
    halt #0
"""
        board = Board(VEXPRESS)
        virt = VirtSimulator(board, arch=ARM)
        assert virt._dtlb.capacity >= 1024

    def test_feature_summaries(self):
        board = Board(VEXPRESS)
        virt = VirtSimulator(board, arch=ARM)
        assert virt.feature_summary()["Interrupts"] == "Via Emulation Layer"
        assert virt.feature_summary()["Undefined Instruction"] == "Hypercall"
        board2 = Board(VEXPRESS)
        native = NativeMachine(board2, arch=ARM)
        assert native.feature_summary()["Execution Model"] == "Direct"
