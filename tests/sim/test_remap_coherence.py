"""TLB coherence under guest-driven remapping.

The guest rewrites its own page tables (mapping the same virtual page
to a different physical page), issues the architectural TLB
maintenance operation, and reads through the remapped address.  After
a flush/invalidate every engine must observe the *new* mapping --
stale-TLB reads past a maintenance operation would be a correctness
bug in any of the TLB structures (SoftTLB, set-associative, softmmu
array, ASID-tagged).
"""

import pytest

from repro.arch import ARM
from repro.isa.assembler import assemble
from repro.machine import Board
from repro.machine.mmu import AP_USER_RW, PageTableBuilder, make_page_entry
from repro.platform import VEXPRESS
from tests.sim.util import ALL_ENGINES

TTBR = 0x0100_0000
L2_POOL = 0x0101_0000

VPAGE = 0x0020_0000  # the virtual page being remapped
PHYS_A = 0x0030_0000
PHYS_B = 0x0031_0000

_NEW_ENTRY = make_page_entry(PHYS_B, AP_USER_RW, xn=True)


def _program(maintenance_op):
    """Map VPAGE->PHYS_A, read, remap to PHYS_B, maintain, read again."""
    return """
.org 0x4000
    b _start
    b bad
    b bad
    b bad
    b bad
    b bad
.org 0x8000
_start:
    li sp, 0xf0000
    li r0, 0x4000
    mcr r0, p15, c6
    li r0, 0x%(ttbr)08x
    mcr r0, p15, c2
    movi r0, 1
    mcr r0, p15, c1
    li r11, 0x%(vpage)08x
    ldr r4, [r11]            ; reads PHYS_A's value (fills the TLB)
    ; rewrite the L2 entry to point at PHYS_B
    li r0, 0x%(l2_addr)08x
    li r1, 0x%(new_entry)08x
    str r1, [r0]
%(maintenance)s
    ldr r5, [r11]            ; must observe PHYS_B's value
    halt #0
bad:
    halt #0xE0
""" % {
        "ttbr": TTBR,
        "vpage": VPAGE,
        "l2_addr": L2_POOL + 4 * ((VPAGE >> 12) & 0xFF),
        "new_entry": _NEW_ENTRY,
        "maintenance": maintenance_op,
    }


def _board():
    board = Board(VEXPRESS)
    builder = PageTableBuilder(board.memory, TTBR, L2_POOL)
    # Identity-map low RAM (code/stack) and the page-table region so
    # the guest can edit its own tables.
    builder.map_section(0x0, 0x0, ap=AP_USER_RW)
    builder.map_section(0x0100_0000, 0x0100_0000, ap=AP_USER_RW, xn=True)
    builder.map_page(VPAGE, PHYS_A, ap=AP_USER_RW, xn=True)
    board.memory.write32(PHYS_A, 0xAAAA1111)
    board.memory.write32(PHYS_B, 0xBBBB2222)
    return board


@pytest.fixture(params=ALL_ENGINES, ids=[cls.name for cls in ALL_ENGINES])
def engine_cls(request):
    return request.param


class TestRemapCoherence:
    def test_full_flush_exposes_new_mapping(self, engine_cls):
        source = _program("    mcr r0, p15, c7    ; TLBFLUSH")
        board = _board()
        board.load(assemble(source))
        engine = engine_cls(board, arch=ARM)
        result = engine.run(max_insns=100_000)
        assert result.halted_ok
        assert board.cpu.regs[4] == 0xAAAA1111
        assert board.cpu.regs[5] == 0xBBBB2222

    def test_single_entry_invalidate_exposes_new_mapping(self, engine_cls):
        source = _program("    mcr r11, p15, c8   ; TLBIMVA on the page")
        board = _board()
        board.load(assemble(source))
        engine = engine_cls(board, arch=ARM)
        result = engine.run(max_insns=100_000)
        assert result.halted_ok
        assert board.cpu.regs[5] == 0xBBBB2222

    def test_asid_tagged_interpreter_flush(self):
        from repro.sim import FastInterpreter

        source = _program("    mcr r0, p15, c7")
        board = _board()
        board.load(assemble(source))
        engine = FastInterpreter(board, arch=ARM, asid_tagged=True)
        result = engine.run(max_insns=100_000)
        assert result.halted_ok
        assert board.cpu.regs[5] == 0xBBBB2222

    def test_dbt_asid_tagged_flush(self):
        from repro.sim import DBTSimulator
        from repro.sim.dbt import DBTConfig

        source = _program("    mcr r0, p15, c7")
        board = _board()
        board.load(assemble(source))
        engine = DBTSimulator(board, arch=ARM, config=DBTConfig(asid_tagged=True))
        result = engine.run(max_insns=100_000)
        assert result.halted_ok
        assert board.cpu.regs[5] == 0xBBBB2222


class TestWallclockOrdering:
    def test_detailed_engine_is_really_slower(self):
        """Wall-clock sanity: the detailed interpreter genuinely costs
        more host time than the fast interpreter on the same guest."""
        import time

        from repro.sim import DetailedInterpreter, FastInterpreter

        source = """
.org 0x8000
_start:
    li r1, 3000
loop:
    addi r2, r2, 1
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
"""
        program = assemble(source)
        times = {}
        for cls in (FastInterpreter, DetailedInterpreter):
            board = Board(VEXPRESS)
            board.load(program)
            engine = cls(board, arch=ARM)
            start = time.perf_counter()
            result = engine.run(max_insns=100_000)
            times[cls.name] = time.perf_counter() - start
            assert result.halted_ok
        assert times["gem5"] > 2 * times["simit"]
