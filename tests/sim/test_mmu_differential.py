"""MMU-enabled differential tests across all engines.

Page tables are prepared host-side via PageTableBuilder, the MMU is
enabled through CP15, and randomised guest programs then hit mapped
and unmapped pages with a skip-on-fault handler installed.  All five
engines must agree on the final architectural state, and the walker's
view must match the mapping we constructed.
"""

from hypothesis import given, settings, strategies as st

from repro.arch import ARM
from repro.isa.assembler import assemble
from repro.machine import Board
from repro.machine.mmu import (
    AP_USER_RW,
    AccessType,
    Fault,
    PageTableBuilder,
    PageTableWalker,
)
from repro.platform import VEXPRESS
from tests.sim.util import ALL_ENGINES

TTBR = 0x0100_0000
L2_POOL = 0x0101_0000

_HEADER = """
.org 0x4000
    b _start
    b skip
    b skip
    b skip
    b dab
    b skip
.org 0x8000
_start:
    li sp, 0xf0000
    li r0, 0x4000
    mcr r0, p15, c6
    li r0, 0x%08x
    mcr r0, p15, c2
    movi r0, 1
    mcr r0, p15, c1
""" % TTBR

_FOOTER = """
    halt #0
skip:
    halt #0xE9
dab:
    mrc r8, p15, c10
    addi r8, r8, 4
    mcr r8, p15, c10
    addi r9, r9, 1
    sret
"""


def _prepare_board():
    """A board with identity-mapped low RAM plus a sparse data window."""
    board = Board(VEXPRESS)
    builder = PageTableBuilder(board.memory, TTBR, L2_POOL)
    builder.map_section(0x0, 0x0, ap=AP_USER_RW)  # code, vectors, stack
    return board, builder

# Eight candidate data pages at 0x02000000 + k*4KiB; a subset is mapped.
DATA_BASE = 0x0200_0000


def _body_for(accesses):
    lines = []
    for index, (page, is_store) in enumerate(accesses):
        addr = DATA_BASE + page * 0x1000
        lines.append("    li r1, 0x%08x" % addr)
        if is_store:
            lines.append("    movi r2, %d" % (index + 1))
            lines.append("    str r2, [r1]")
        else:
            lines.append("    ldr r3, [r1]")
    return "\n".join(lines)


@settings(max_examples=15, deadline=None)
@given(
    mapped=st.sets(st.integers(min_value=0, max_value=7), max_size=8),
    accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.booleans()),
        min_size=1,
        max_size=12,
    ),
)
def test_engines_agree_under_mmu(mapped, accesses):
    source = _HEADER + _body_for(accesses) + _FOOTER
    program = assemble(source)
    outcomes = {}
    for engine_cls in ALL_ENGINES:
        board, builder = _prepare_board()
        for page in mapped:
            builder.map_page(DATA_BASE + page * 0x1000, DATA_BASE + page * 0x1000,
                             ap=AP_USER_RW, xn=True)
        board.load(program)
        engine = engine_cls(board, arch=ARM)
        result = engine.run(max_insns=100_000)
        data = board.memory.read_bytes(DATA_BASE, 8 * 0x1000)
        outcomes[engine_cls.name] = (
            result.exit_reason,
            result.halt_code,
            board.cpu.snapshot(),
            engine.counters.data_aborts,
            data,
        )
    reference = next(iter(outcomes.values()))
    for name, outcome in outcomes.items():
        assert outcome == reference, "engine %s diverged" % name
    # Sanity: the abort count equals the number of unmapped accesses.
    unmapped_accesses = sum(1 for page, _s in accesses if page not in mapped)
    assert reference[3] == unmapped_accesses


@settings(max_examples=30, deadline=None)
@given(
    pages=st.dictionaries(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
        max_size=16,
    ),
    probe=st.integers(min_value=0, max_value=31),
)
def test_walker_matches_constructed_mapping(pages, probe):
    """Property: the walker translates exactly the mapping the builder
    constructed, and faults everywhere else."""
    board, builder = _prepare_board()
    walker = PageTableWalker(board.memory)
    for vpage, ppage in pages.items():
        builder.map_page(DATA_BASE + vpage * 0x1000, DATA_BASE + ppage * 0x1000)
    vaddr = DATA_BASE + probe * 0x1000 + 0x123
    if probe in pages:
        result = walker.walk(TTBR, vaddr, AccessType.READ, True)
        assert result.paddr == DATA_BASE + pages[probe] * 0x1000 + 0x123
        assert result.levels == 2
    else:
        try:
            walker.walk(TTBR, vaddr, AccessType.READ, True)
        except Fault:
            pass
        else:
            raise AssertionError("expected a translation fault")
