"""Cost model and version-timeline tests."""

import pytest

from repro.sim.base import CostModel, Counters
from repro.sim.costs import (
    DBT_BASE_COSTS,
    dbt_cost_model,
    detailed_cost_model,
    interp_cost_model,
    native_cost_model,
    virt_cost_model,
)
from repro.sim.dbt.versions import (
    BASELINE_VERSION,
    CHANGELOG,
    QEMU_VERSIONS,
    dbt_config_for_version,
)


class TestCostModel:
    def test_linear_evaluation(self):
        model = CostModel({"instructions": 2.0, "loads": 10.0})
        assert model.evaluate({"instructions": 5, "loads": 3}) == 40.0

    def test_missing_counters_cost_zero(self):
        model = CostModel({"instructions": 2.0})
        assert model.evaluate({"loads": 100}) == 0.0

    def test_unknown_counter_rejected(self):
        with pytest.raises(ValueError):
            CostModel({"bogus_counter": 1.0})

    def test_scaled(self):
        model = CostModel({"instructions": 2.0, "loads": 10.0})
        scaled = model.scaled({"loads": 3.0})
        assert scaled.costs["loads"] == 30.0
        assert scaled.costs["instructions"] == 2.0
        assert model.costs["loads"] == 10.0  # original untouched

    def test_with_overrides(self):
        model = CostModel({"instructions": 2.0})
        new = model.with_overrides({"instructions": 5.0, "loads": 1.0})
        assert new.costs == {"instructions": 5.0, "loads": 1.0}


class TestCounters:
    def test_snapshot_delta(self):
        counters = Counters()
        before = counters.snapshot()
        counters.instructions += 10
        counters.loads += 2
        delta = Counters.delta(before, counters.snapshot())
        assert delta["instructions"] == 10
        assert delta["loads"] == 2
        assert delta["stores"] == 0

    def test_derived_views(self):
        counters = Counters()
        counters.branches_direct_intra = 1
        counters.branches_indirect_inter = 2
        assert counters.taken_branches == 3
        counters.syscalls = 4
        counters.undefs = 1
        assert counters.exceptions == 5

    def test_reset(self):
        counters = Counters()
        counters.instructions = 5
        counters.reset()
        assert counters.instructions == 0


class TestEngineTables:
    def test_all_tables_construct(self):
        for model in (
            interp_cost_model(),
            detailed_cost_model(),
            dbt_cost_model(),
            virt_cost_model("arm"),
            virt_cost_model("x86"),
            native_cost_model("arm"),
            native_cost_model("x86"),
        ):
            assert model.evaluate({"instructions": 1}) >= 0

    def test_per_insn_ordering(self):
        """The engines' per-instruction base cost ordering matches the
        paper: native < kvm < dbt-generated-code < interpreter < gem5."""
        per_insn = {
            "native": native_cost_model("arm").costs["instructions"],
            "kvm": virt_cost_model("arm").costs["instructions"],
            "dbt": dbt_cost_model().costs["instructions"],
            "interp": interp_cost_model().costs["instructions"],
            "gem5": detailed_cost_model().costs["instructions"],
        }
        assert (
            per_insn["native"]
            < per_insn["kvm"]
            < per_insn["dbt"]
            < per_insn["interp"]
            < per_insn["gem5"]
        )

    def test_dbt_overrides_applied(self):
        model = dbt_cost_model({"translations": 1.0})
        assert model.costs["translations"] == 1.0
        assert model.costs["instructions"] == DBT_BASE_COSTS["instructions"]


class TestVersionTimeline:
    def test_twenty_versions(self):
        assert len(QEMU_VERSIONS) == 20
        assert QEMU_VERSIONS[0] == BASELINE_VERSION == "v1.7.0"
        assert QEMU_VERSIONS[-1] == "v2.5.0-rc2"

    def test_every_version_has_a_config(self):
        for version in QEMU_VERSIONS:
            config = dbt_config_for_version(version)
            assert config.version == version

    def test_unknown_version_rejected(self):
        with pytest.raises(KeyError):
            dbt_config_for_version("v9.9.9")

    def test_baseline_is_identity(self):
        config = dbt_config_for_version(BASELINE_VERSION)
        for counter, cost in config.cost_overrides.items():
            assert cost == pytest.approx(DBT_BASE_COSTS[counter])

    def test_v2_0_0_improves_codegen_and_exec(self):
        config = dbt_config_for_version("v2.0.0")
        assert config.cost_overrides["translations"] < DBT_BASE_COSTS["translations"]
        assert config.cost_overrides["instructions"] < DBT_BASE_COSTS["instructions"]

    def test_v1_series_has_smaller_tlb(self):
        assert dbt_config_for_version("v1.7.0").tlb_bits < dbt_config_for_version("v2.0.0").tlb_bits

    def test_data_fault_fast_path_is_arch_dependent(self):
        arm = dbt_config_for_version("v2.5.0-rc0", "arm")
        x86 = dbt_config_for_version("v2.5.0-rc0", "x86")
        assert arm.cost_overrides["data_aborts"] < x86.cost_overrides["data_aborts"]
        # ~8x on ARM, ~4x on x86, vs the baseline cost.
        assert DBT_BASE_COSTS["data_aborts"] / arm.cost_overrides["data_aborts"] == pytest.approx(8.0)
        assert DBT_BASE_COSTS["data_aborts"] / x86.cost_overrides["data_aborts"] == pytest.approx(4.0)

    def test_control_flow_declines_monotonically_after_2_1(self):
        dispatch = [
            dbt_config_for_version(v).cost_overrides["slow_dispatches"]
            for v in QEMU_VERSIONS
        ]
        tail = dispatch[6:]  # from v2.1.0 on
        assert all(a <= b for a, b in zip(tail, tail[1:]))

    def test_tlb_maintenance_improves(self):
        flushes = [
            dbt_config_for_version(v).cost_overrides["tlb_flushes"]
            for v in QEMU_VERSIONS
        ]
        assert flushes[-1] < 0.5 * flushes[0]

    def test_changelog_mentions_key_versions(self):
        assert "v2.0.0" in CHANGELOG
        assert "v2.5.0-rc0" in CHANGELOG


class TestDBTConfig:
    def test_replace(self):
        from repro.sim.dbt import DBTConfig

        config = DBTConfig(tlb_bits=8)
        other = config.replace(tlb_bits=4)
        assert other.tlb_bits == 4
        assert config.tlb_bits == 8

    def test_validation(self):
        from repro.sim.dbt import DBTConfig

        with pytest.raises(ValueError):
            DBTConfig(max_block_insns=0)
        with pytest.raises(ValueError):
            DBTConfig(tlb_bits=1)
