"""Detailed (Gem5-like) engine tests: micro-ops, events, modelled TLB."""

import pytest

from repro.arch import ARM
from repro.errors import UnsupportedFeatureError
from repro.machine import Board
from repro.platform import VEXPRESS
from repro.sim import DetailedInterpreter, FastInterpreter
from repro.sim.detailed import EventQueue, MicroOp
from tests.sim.util import run_asm


class TestMicroOps:
    def test_every_instruction_produces_micro_ops(self):
        engine, _board, _res = run_asm(
            DetailedInterpreter,
            """
    movi r1, 3
    addi r1, r1, 1
    halt #0
""",
        )
        assert engine.counters.micro_ops >= 4 * engine.counters.instructions
        assert engine.counters.tick_events == engine.counters.micro_ops

    def test_memory_ops_crack_wider(self):
        e_mem, _b, _r = run_asm(
            DetailedInterpreter,
            "    li r1, 0x2000000\n    ldr r2, [r1]\n    halt #0\n",
        )
        e_alu, _b, _r = run_asm(
            DetailedInterpreter,
            "    li r1, 0x2000000\n    addi r2, r1, 0\n    halt #0\n",
        )
        assert e_mem.counters.micro_ops > e_alu.counters.micro_ops

    def test_serialising_ops_crack_wider(self):
        e_sys, _b, _r = run_asm(DetailedInterpreter, "    swi #1\n", max_insns=50)
        # SWI reaches the default vector (no table): it ends up spinning
        # through low memory; just check cracking on the first insn.
        assert e_sys.counters.micro_ops >= 5

    def test_no_decode_cache(self):
        engine, _board, _res = run_asm(
            DetailedInterpreter,
            """
    movi r1, 20
loop:
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
""",
        )
        # Every executed instruction decodes afresh.
        assert engine.counters.decode_misses == engine.counters.instructions
        assert engine.counters.decode_hits == 0

    def test_fast_interpreter_does_cache_decodes(self):
        engine, _board, _res = run_asm(
            FastInterpreter,
            """
    movi r1, 20
loop:
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
""",
        )
        assert engine.counters.decode_hits > engine.counters.decode_misses


class TestTimingMode:
    def test_invalid_mode_rejected(self):
        board = Board(VEXPRESS)
        with pytest.raises(ValueError):
            DetailedInterpreter(board, arch=ARM, mode="cycle-exact")

    def test_timing_mode_schedules_cache_events(self):
        body = "    li r1, 0x2000000\n    ldr r0, [r1]\n    str r0, [r1]\n    halt #0\n"
        atomic, _b, _r = run_asm(DetailedInterpreter, body, mode="atomic")
        timing, _b, _r = run_asm(DetailedInterpreter, body, mode="timing")
        assert timing.counters.tick_events > atomic.counters.tick_events
        # Exactly two extra events per memory access.
        mem_ops = 2
        assert (
            timing.counters.tick_events - atomic.counters.tick_events == 2 * mem_ops
        )

    def test_timing_mode_costs_more(self):
        body = "    li r1, 0x2000000\n" + "    ldr r0, [r1]\n" * 8 + "    halt #0\n"
        atomic, _b, _r = run_asm(DetailedInterpreter, body, mode="atomic")
        timing, _b, _r = run_asm(DetailedInterpreter, body, mode="timing")
        a = atomic.modeled_ns(atomic.counters.snapshot())
        t = timing.modeled_ns(timing.counters.snapshot())
        assert t > a

    def test_feature_summary_shows_mode(self):
        board = Board(VEXPRESS)
        engine = DetailedInterpreter(board, arch=ARM, mode="timing")
        assert "timing" in engine.feature_summary()["Execution Model"]


class TestEventQueue:
    def test_drain_counts(self):
        queue = EventQueue()
        for _ in range(5):
            queue.schedule(MicroOp("execute", None))
        assert queue.drain() == 5
        assert queue.ticks == 5
        assert queue.drain() == 0


class TestUnsupportedFeatures:
    def test_safedev_read_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            run_asm(
                DetailedInterpreter,
                "    li r1, 0xf0002000\n    ldr r0, [r1]\n    halt #0\n",
            )

    def test_intc_enable_still_works(self):
        # Only the *trigger* register is unimplemented.
        _e, board, res = run_asm(
            DetailedInterpreter,
            "    li r1, 0xf0004004\n    movi r2, 1\n    str r2, [r1]\n    halt #0\n",
        )
        assert res.halted_ok
        assert board.intc.enable == 1

    def test_uart_supported(self):
        _e, board, res = run_asm(
            DetailedInterpreter,
            "    li r1, 0xf0000000\n    movi r2, 88\n    strb r2, [r1]\n    halt #0\n",
        )
        assert res.halted_ok
        assert board.uart.text == "X"


class TestModeledCost:
    def test_detailed_is_costlier_than_fast(self):
        body = """
    movi r1, 50
loop:
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
"""
        fast, _b, _r = run_asm(FastInterpreter, body)
        slow, _b, _r = run_asm(DetailedInterpreter, body)
        fast_ns = fast.modeled_ns(fast.counters.snapshot())
        slow_ns = slow.modeled_ns(slow.counters.snapshot())
        assert slow_ns > 10 * fast_ns

    def test_set_associative_tlb_installed(self):
        board = Board(VEXPRESS)
        engine = DetailedInterpreter(board, arch=ARM, tlb_sets=8, tlb_ways=4)
        assert engine._dtlb.sets == 8
        assert engine._dtlb.ways == 4

    def test_feature_summary(self):
        board = Board(VEXPRESS)
        engine = DetailedInterpreter(board, arch=ARM)
        summary = engine.feature_summary()
        assert summary["Memory Access"] == "Modelled TLB"
        assert summary["Code Generation"] == "None"
