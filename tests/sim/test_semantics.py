"""Instruction semantics, exercised on every engine.

Each test runs a small bare-metal program on all five engines and
checks the architectural outcome, so the suite doubles as a
cross-engine conformance check for each instruction class.
"""

import pytest

from repro.sim.base import ExitReason
from tests.sim.util import ALL_ENGINES, run_asm, run_on_all


@pytest.fixture(params=ALL_ENGINES, ids=[cls.name for cls in ALL_ENGINES])
def engine_cls(request):
    return request.param


class TestALU:
    def test_add_sub(self, engine_cls):
        _e, board, res = run_asm(
            engine_cls,
            """
    movi r1, 100
    movi r2, 58
    add r3, r1, r2
    sub r4, r1, r2
    halt #0
""",
        )
        assert res.halted_ok
        assert board.cpu.regs[3] == 158
        assert board.cpu.regs[4] == 42

    def test_wraparound(self, engine_cls):
        _e, board, res = run_asm(
            engine_cls,
            """
    movi r1, 0xffff
    movt r1, 0xffff
    addi r1, r1, 1
    halt #0
""",
        )
        assert board.cpu.regs[1] == 0

    def test_logic_ops(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    movi r1, 0xf0f0
    movi r2, 0x0ff0
    and r3, r1, r2
    orr r4, r1, r2
    eor r5, r1, r2
    mvn r6, r1
    halt #0
""",
        )
        regs = board.cpu.regs
        assert regs[3] == 0x00F0
        assert regs[4] == 0xFFF0
        assert regs[5] == 0xFF00
        assert regs[6] == 0xFFFF0F0F

    def test_shifts(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    movi r1, 0x8000
    movt r1, 0x8000
    lsri r2, r1, 4
    asri r3, r1, 4
    lsli r4, r1, 1
    halt #0
""",
        )
        regs = board.cpu.regs
        assert regs[2] == 0x08000800
        assert regs[3] == 0xF8000800
        assert regs[4] == 0x00010000

    def test_mul_div_rem(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    movi r1, 37
    movi r2, 5
    mul r3, r1, r2
    udiv r4, r1, r2
    urem r5, r1, r2
    movi r6, 0
    udiv r7, r1, r6    ; divide by zero yields 0
    urem r8, r1, r6
    halt #0
""",
        )
        regs = board.cpu.regs
        assert regs[3] == 185
        assert regs[4] == 7
        assert regs[5] == 2
        assert regs[7] == 0
        assert regs[8] == 0

    def test_movt_preserves_low(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    movi r1, 0x1234
    movt r1, 0xabcd
    halt #0
""",
        )
        assert board.cpu.regs[1] == 0xABCD1234


class TestMemoryOps:
    def test_word_roundtrip(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    li r1, 0x2000000
    li r2, 0xcafebabe
    str r2, [r1]
    ldr r3, [r1]
    halt #0
""",
        )
        assert board.cpu.regs[3] == 0xCAFEBABE

    def test_byte_ops(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    li r1, 0x2000000
    li r2, 0x11223344
    str r2, [r1]
    ldrb r3, [r1]
    ldrb r4, [r1, #3]
    movi r5, 0xff
    strb r5, [r1, #1]
    ldr r6, [r1]
    halt #0
""",
        )
        regs = board.cpu.regs
        assert regs[3] == 0x44
        assert regs[4] == 0x11
        assert regs[6] == 0x1122FF44

    def test_negative_offset(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    li r1, 0x2000010
    movi r2, 77
    str r2, [r1, #-16]
    li r3, 0x2000000
    ldr r4, [r3]
    halt #0
""",
        )
        assert board.cpu.regs[4] == 77


class TestControlFlowOps:
    def test_loop(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    movi r1, 10
    movi r2, 0
loop:
    addi r2, r2, 2
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
    halt #0
""",
        )
        assert board.cpu.regs[2] == 20

    def test_call_and_return(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    movi r1, 5
    bl double
    halt #0
double:
    add r1, r1, r1
    br lr
""",
        )
        assert board.cpu.regs[1] == 10

    def test_indirect_call(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    li r5, target
    blr r5
    halt #0
target:
    movi r4, 123
    br lr
""",
        )
        assert board.cpu.regs[4] == 123

    def test_conditional_not_taken(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    movi r1, 1
    cmpi r1, 2
    beq never
    movi r2, 50
    halt #0
never:
    movi r2, 99
    halt #1
""",
        )
        assert board.cpu.regs[2] == 50

    def test_signed_vs_unsigned_conditions(self, engine_cls):
        _e, board, _res = run_asm(
            engine_cls,
            """
    li r1, 0xffffffff     ; -1 signed, huge unsigned
    cmpi r1, 1
    blt signed_less
    halt #1
signed_less:
    cmpi r1, 1
    bhs unsigned_geq
    halt #2
unsigned_geq:
    movi r3, 1
    halt #0
""",
        )
        assert board.cpu.regs[3] == 1


class TestHalt:
    def test_halt_code(self, engine_cls):
        _e, _board, res = run_asm(engine_cls, "    halt #7\n")
        assert res.exit_reason is ExitReason.HALT
        assert res.halt_code == 7

    def test_instruction_limit(self, engine_cls):
        _e, _board, res = run_asm(engine_cls, "spin:\n    b spin\n", max_insns=500)
        assert res.exit_reason is ExitReason.LIMIT
        assert res.instructions <= 600


class TestCrossEngineAgreement:
    def test_same_register_file_everywhere(self):
        body = """
    movi r1, 3
    movi r2, 0
    movi r3, 17
mix:
    mul r3, r3, r3
    eori r3, r3, 0x5a5a
    addi r2, r2, 1
    cmp r2, r1
    bne mix
    halt #0
"""
        outcomes = {
            name: board.cpu.snapshot()
            for name, (_e, board, _r) in run_on_all(body).items()
        }
        values = list(outcomes.values())
        assert all(value == values[0] for value in values), outcomes
