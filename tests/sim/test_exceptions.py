"""Exception, interrupt and privilege tests on every engine.

These programs enable the MMU where relevant and install real vector
tables, so they exercise the full delivery paths the Exception
Handling benchmarks rely on.
"""

import pytest

from repro.machine.cpu import ExceptionVector
from repro.sim.base import ExitReason
from tests.sim.util import ALL_ENGINES, run_asm

VEC = """
.org 0x4000
    b _start          ; RESET
    b undef_handler   ; UNDEF
    b swi_handler     ; SWI
    b pabort_handler  ; PREFETCH_ABORT
    b dabort_handler  ; DATA_ABORT
    b irq_handler     ; IRQ
"""


def run_with_vectors(engine_cls, body, handlers, max_insns=100_000):
    """Run with a vector table at 0x4000 (VBAR set by the prologue)."""
    source = (
        VEC
        + ".org 0x8000\n_start:\n    li sp, 0x100000\n"
        + "    li r0, 0x4000\n    mcr r0, p15, c6\n"
        + body
        + "\n"
        + handlers
        + "\n"
    )
    from repro.isa.assembler import assemble
    from repro.machine import Board
    from repro.platform import VEXPRESS
    from repro.arch import ARM

    board = Board(VEXPRESS)
    board.load(assemble(source))
    engine = engine_cls(board, arch=ARM)
    result = engine.run(max_insns=max_insns)
    return engine, board, result


DEFAULT_HANDLERS = """
undef_handler:
    halt #0xE1
swi_handler:
    halt #0xE2
pabort_handler:
    halt #0xE3
dabort_handler:
    halt #0xE4
irq_handler:
    halt #0xE5
"""


def handlers_with(**overrides):
    text = []
    for name, default in (
        ("undef_handler", "    halt #0xE1"),
        ("swi_handler", "    halt #0xE2"),
        ("pabort_handler", "    halt #0xE3"),
        ("dabort_handler", "    halt #0xE4"),
        ("irq_handler", "    halt #0xE5"),
    ):
        text.append("%s:" % name)
        text.append(overrides.get(name, default))
    return "\n".join(text)


@pytest.fixture(params=ALL_ENGINES, ids=[cls.name for cls in ALL_ENGINES])
def engine_cls(request):
    return request.param


class TestSyscall:
    def test_swi_enters_handler_and_returns(self, engine_cls):
        _e, board, res = run_with_vectors(
            engine_cls,
            """
    movi r1, 1
    swi #42
    movi r2, 2
    halt #0
""",
            handlers_with(swi_handler="    movi r3, 9\n    sret"),
        )
        assert res.halted_ok
        assert board.cpu.regs[1] == 1
        assert board.cpu.regs[2] == 2
        assert board.cpu.regs[3] == 9

    def test_swi_counts(self, engine_cls):
        engine, _board, _res = run_with_vectors(
            engine_cls,
            "    swi #1\n    swi #1\n    halt #0",
            handlers_with(swi_handler="    sret"),
        )
        assert engine.counters.syscalls == 2


class TestUndef:
    def test_und_instruction(self, engine_cls):
        engine, board, res = run_with_vectors(
            engine_cls,
            """
    movi r1, 7
    und
    movi r2, 8
    halt #0
""",
            handlers_with(undef_handler="    movi r4, 1\n    sret"),
        )
        assert res.halted_ok
        assert board.cpu.regs[2] == 8
        assert engine.counters.undefs == 1

    def test_unknown_encoding_is_undef(self, engine_cls):
        _e, board, res = run_with_vectors(
            engine_cls,
            """
    .word 0x7b000000     ; not a valid opcode
    movi r2, 5
    halt #0
""",
            handlers_with(undef_handler="    sret"),
        )
        assert res.halted_ok
        assert board.cpu.regs[2] == 5

    def test_user_mode_privileged_op_is_undef(self, engine_cls):
        # Drop to user mode, then try a privileged CPS.
        _e, board, res = run_with_vectors(
            engine_cls,
            """
    cps #0               ; switch to user mode
    cps #1               ; privileged: must trap as UNDEF
    halt #0xBB           ; skipped by the handler's halt
""",
            handlers_with(undef_handler="    halt #0xAA"),
        )
        assert res.exit_reason is ExitReason.HALT
        assert res.halt_code == 0xAA

    def test_undefined_coprocessor_is_undef(self, engine_cls):
        _e, _board, res = run_with_vectors(
            engine_cls,
            "    mrc r0, p9, c0\n    halt #0xBB",
            handlers_with(undef_handler="    halt #0xAA"),
        )
        assert res.halt_code == 0xAA


class TestAborts:
    def test_data_abort_records_fault_address(self, engine_cls):
        engine, board, res = run_with_vectors(
            engine_cls,
            """
    li r1, 0x70000000    ; physical hole: bus fault with MMU off
    ldr r2, [r1]
    halt #0xBB
""",
            handlers_with(dabort_handler="    mrc r5, p15, c5\n    halt #0xAC"),
        )
        assert res.halt_code == 0xAC
        assert board.cpu.regs[5] == 0x70000000
        assert engine.counters.data_aborts == 1

    def test_data_abort_resume_skips_instruction(self, engine_cls):
        _e, board, res = run_with_vectors(
            engine_cls,
            """
    li r1, 0x70000000
    ldr r2, [r1]
    movi r3, 77
    halt #0
""",
            handlers_with(
                dabort_handler="""
    mrc r8, p15, c10
    addi r8, r8, 4
    mcr r8, p15, c10
    sret"""
            ),
        )
        assert res.halted_ok
        assert board.cpu.regs[3] == 77

    def test_prefetch_abort_on_jump_to_hole(self, engine_cls):
        engine, board, res = run_with_vectors(
            engine_cls,
            """
    li r1, 0x70000000
    blr r1
    movi r3, 55
    halt #0
""",
            handlers_with(
                pabort_handler="    mcr lr, p15, c10\n    sret"
            ),
        )
        assert res.halted_ok
        assert board.cpu.regs[3] == 55
        assert engine.counters.prefetch_aborts == 1


class TestInterrupts:
    def test_swirq_delivery_and_ack(self, engine_cls):
        if engine_cls.name == "gem5":
            pytest.skip("gem5 model lacks the software-trigger feature")
        engine, board, res = run_with_vectors(
            engine_cls,
            """
    li r1, 0xf0004004    ; INTC.ENABLE
    movi r2, 1
    str r2, [r1]
    cps #3               ; kernel mode, IRQs on
    li r1, 0xf0004008    ; INTC.TRIGGER
    movi r2, 1
    str r2, [r1]
wait:
    cmpi r6, 0           ; spin until the handler ran (block boundary
    beq wait             ; per check, so every engine converges)
    cps #1               ; IRQs off
    halt #0
""",
            handlers_with(
                irq_handler="""
    li r0, 0xf000400c    ; INTC.ACK
    movi r1, 1
    str r1, [r0]
    movi r6, 42
    sret"""
            ),
        )
        assert res.halted_ok
        assert board.cpu.regs[6] == 42
        assert engine.counters.irqs == 1
        assert not board.intc.irq_asserted()

    def test_masked_irq_not_delivered(self, engine_cls):
        if engine_cls.name == "gem5":
            pytest.skip("gem5 model lacks the software-trigger feature")
        engine, board, res = run_with_vectors(
            engine_cls,
            """
    li r1, 0xf0004004
    movi r2, 1
    str r2, [r1]
    li r1, 0xf0004008    ; trigger while CPU IRQs are masked
    str r2, [r1]
    nop
    nop
    halt #0
""",
            handlers_with(),
        )
        assert res.halted_ok
        assert engine.counters.irqs == 0
        assert board.intc.irq_asserted()  # still pending

    def test_gem5_rejects_swirq_trigger(self):
        """Figure 7 dagger: the detailed engine does not implement the
        software-interrupt trigger."""
        from repro.errors import UnsupportedFeatureError
        from repro.sim import DetailedInterpreter

        with pytest.raises(UnsupportedFeatureError):
            run_with_vectors(
                DetailedInterpreter,
                """
    li r1, 0xf0004008
    movi r2, 1
    str r2, [r1]
    halt #0
""",
                handlers_with(),
            )

    def test_wfi_wakes_on_pending(self, engine_cls):
        if engine_cls.name == "gem5":
            pytest.skip("gem5 model lacks the software-trigger feature")
        # Pending-but-masked interrupt: WFI must fall through.
        _e, _board, res = run_with_vectors(
            engine_cls,
            """
    li r1, 0xf0004004
    movi r2, 1
    str r2, [r1]
    li r1, 0xf0004008
    str r2, [r1]
    wfi
    halt #0
""",
            handlers_with(),
        )
        assert res.halted_ok

    def test_wfi_deadlock_detected(self, engine_cls):
        _e, _board, res = run_with_vectors(
            engine_cls, "    wfi\n    halt #0", handlers_with()
        )
        assert res.exit_reason is ExitReason.DEADLOCK
