"""SPEC-proxy workload tests."""

import pytest

from repro.arch import ARM, X86
from repro.core import Harness
from repro.platform import PCPLAT, VEXPRESS
from repro.workloads import SPEC_PROXIES, get_workload


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestRegistry:
    def test_twelve_proxies(self):
        assert len(SPEC_PROXIES) == 12
        names = {w.name for w in SPEC_PROXIES}
        assert names == {
            "perlbench",
            "bzip2",
            "gcc",
            "mcf",
            "gobmk",
            "hmmer",
            "sjeng",
            "libquantum",
            "h264ref",
            "omnetpp",
            "astar",
            "xalancbmk",
        }

    def test_lookup(self):
        assert get_workload("mcf").name == "mcf"
        with pytest.raises(KeyError):
            get_workload("spec2017")


@pytest.mark.parametrize("workload", SPEC_PROXIES, ids=[w.name for w in SPEC_PROXIES])
class TestProxiesRun:
    def test_runs_on_reference_engine(self, harness, workload):
        result = harness.run_benchmark(workload, "simit", ARM, VEXPRESS, iterations=2)
        assert result.status == "ok", result.error
        assert result.kernel_instructions > 1000

    def test_runs_on_x86_profile(self, harness, workload):
        result = harness.run_benchmark(workload, "qemu-dbt", X86, PCPLAT, iterations=2)
        assert result.status == "ok", result.error

    def test_deterministic_across_engines(self, workload):
        """The same workload must retire the same instruction stream on
        the fast interpreter and on the DBT engine."""
        h = Harness()
        interp = h.run_benchmark(workload, "simit", ARM, VEXPRESS, iterations=2)
        dbt = h.run_benchmark(workload, "qemu-dbt", ARM, VEXPRESS, iterations=2)
        assert interp.kernel_instructions == dbt.kernel_instructions
        assert interp.kernel_delta["loads"] == dbt.kernel_delta["loads"]
        assert interp.kernel_delta["stores"] == dbt.kernel_delta["stores"]


class TestDynamicCharacter:
    """Each proxy must exhibit the profile its namesake is known for."""

    def test_mcf_is_memory_heavy(self, harness):
        result = harness.run_benchmark(get_workload("mcf"), "simit", ARM, VEXPRESS, iterations=2)
        delta = result.kernel_delta
        loads_per_insn = delta["loads"] / delta["instructions"]
        assert loads_per_insn > 0.10

    def test_mcf_is_call_heavy(self, harness):
        result = harness.run_benchmark(get_workload("mcf"), "simit", ARM, VEXPRESS, iterations=2)
        delta = result.kernel_delta
        assert delta["calls"] > 1000  # cost() + penalty() per hop

    def test_sjeng_is_compute_dense(self, harness):
        result = harness.run_benchmark(get_workload("sjeng"), "simit", ARM, VEXPRESS, iterations=2)
        delta = result.kernel_delta
        calls_per_insn = delta["calls"] / delta["instructions"]
        assert calls_per_insn < 0.005  # few calls: big straight-line blocks

    def test_libquantum_streams_memory(self, harness):
        result = harness.run_benchmark(
            get_workload("libquantum"), "simit", ARM, VEXPRESS, iterations=2
        )
        delta = result.kernel_delta
        assert delta["stores"] > 1000

    def test_gobmk_is_branchy(self, harness):
        result = harness.run_benchmark(get_workload("gobmk"), "simit", ARM, VEXPRESS, iterations=2)
        delta = result.kernel_delta
        branches = (
            delta["branches_direct_intra"]
            + delta["branches_direct_inter"]
            + delta["branches_not_taken"]
        )
        assert branches / delta["instructions"] > 0.10

    def test_xalancbmk_returns_constantly(self, harness):
        result = harness.run_benchmark(
            get_workload("xalancbmk"), "simit", ARM, VEXPRESS, iterations=2
        )
        delta = result.kernel_delta
        # Every handler call returns through an indirect branch.
        assert delta["branches_indirect_inter"] + delta["branches_indirect_intra"] > 500

    def test_no_proxy_touches_devices_in_kernel(self, harness):
        for workload in SPEC_PROXIES:
            result = harness.run_benchmark(workload, "simit", ARM, VEXPRESS, iterations=1)
            delta = result.kernel_delta
            assert delta["mmio_reads"] == 0
            # (the phase-2 marker accounts for exactly one device write)
            assert delta["mmio_writes"] == 1


class TestVersionSensitivity:
    """The Figure 2 story: mcf regresses across the QEMU timeline while
    sjeng does not."""

    def test_mcf_declines_sjeng_holds(self, harness):
        from repro.sim.dbt.versions import dbt_config_for_version

        def speedup(workload_name):
            workload = get_workload(workload_name)
            base = harness.run_benchmark(
                workload, "qemu-dbt", ARM, VEXPRESS, iterations=2,
                dbt_config=dbt_config_for_version("v1.7.0"),
            )
            last = harness.run_benchmark(
                workload, "qemu-dbt", ARM, VEXPRESS, iterations=2,
                dbt_config=dbt_config_for_version("v2.5.0-rc2"),
            )
            return base.kernel_ns / last.kernel_ns

        assert speedup("mcf") < 0.95
        assert speedup("sjeng") > 1.0
