"""End-to-end differential test: every SPEC proxy executed on the
guest must produce exactly the state the reference MiniC interpreter
(the oracle) computes.

This closes the loop across the whole stack: MiniC parser -> code
generator -> assembler -> engine semantics, checked against an
independent evaluator of the same source.
"""

import pytest

from repro.arch import ARM
from repro.core import Harness
from repro.lang import compile_minic
from repro.lang.parser import parse
from repro.machine import Board
from repro.platform import VEXPRESS
from repro.sim import DBTSimulator, FastInterpreter
from repro.workloads import SPEC_PROXIES
from repro.workloads.base import GLOBALS_OFFSET
from tests.lang.oracle import Oracle

ITERATIONS = 2


def run_guest(workload, engine_cls):
    """Run the workload bare-metal; return {global: value-or-list}."""
    built = workload.build(ARM, VEXPRESS)
    board = Board(VEXPRESS)
    board.load(built.program)
    board.set_iterations(ITERATIONS)
    engine = engine_cls(board, arch=ARM)
    result = engine.run(max_insns=50_000_000)
    assert result.halted_ok, (workload.name, result)
    unit = built.compiled_unit
    state = {}
    for name, (addr, count) in unit.globals_map.items():
        if count is None:
            state[name] = board.memory.read32(addr)
        else:
            state[name] = [board.memory.read32(addr + 4 * i) for i in range(count)]
    return state


def run_oracle(workload):
    program = parse(workload.source)
    oracle = Oracle(program)
    if "init" in oracle.functions:
        oracle.call("init")
    # The kernel loop passes the remaining iteration count (N..1).
    for remaining in range(ITERATIONS, 0, -1):
        oracle.call("main", remaining)
    return {
        name: (list(value) if isinstance(value, list) else value)
        for name, value in oracle.globals.items()
    }


@pytest.mark.parametrize("workload", SPEC_PROXIES, ids=[w.name for w in SPEC_PROXIES])
class TestWorkloadsMatchOracle:
    def test_interpreter_matches_oracle(self, workload):
        guest = run_guest(workload, FastInterpreter)
        expected = run_oracle(workload)
        assert guest == expected

    def test_dbt_matches_oracle(self, workload):
        guest = run_guest(workload, DBTSimulator)
        expected = run_oracle(workload)
        assert guest == expected
