#!/usr/bin/env python
"""Quickstart: run one SimBench micro-benchmark on two simulators.

This is the smallest end-to-end use of the library: build the System
Call benchmark for the ARM profile, run it on the QEMU-like DBT engine
and on the SimIt-like fast interpreter, and report the run time and
iteration count for each (the two numbers the methodology says must
always be reported together).
"""

from repro.arch import ARM
from repro.core import Harness, get_benchmark
from repro.platform import VEXPRESS


def main():
    harness = Harness()
    benchmark = get_benchmark("System Call")

    print("SimBench quickstart: %r on two simulators" % benchmark.name)
    print("paper iteration count: %s" % format(benchmark.paper_iterations, ","))
    print()

    for simulator in ("qemu-dbt", "simit"):
        result = harness.run_benchmark(benchmark, simulator, ARM, VEXPRESS)
        print("%-10s  status=%-4s  iterations=%-6d  kernel=%.6f s (modeled)"
              % (simulator, result.status, result.iterations, result.kernel_seconds))
        print("            kernel instructions=%d, syscalls observed=%d"
              % (result.kernel_instructions, result.operations))
        print("            ns/operation=%.1f, operation density=%.3f"
              % (result.ns_per_operation, result.operation_density))
        print()

    print("Both engines executed the identical bare-metal guest image;")
    print("only the simulation technology differs -- which is exactly the")
    print("quantity SimBench isolates.")


if __name__ == "__main__":
    main()
