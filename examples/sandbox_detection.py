#!/usr/bin/env python
"""Future work from the paper's conclusion: sandbox detection.

"We might also investigate the use of SimBench-like kernels for
sandbox detection."  This example does exactly that: a guest program
cannot see what executes it, but it can *time* operations whose
relative costs differ wildly between execution technologies.  Four
probe kernels (hot compute, self-modifying code against a call-matched
baseline, system-call traps, device accesses) produce a fingerprint
that identifies DBT, interpretation, detailed simulation,
hardware-assisted virtualization, and bare metal.
"""

from repro.analysis.sandbox import classify, detect_registry_engine


def main():
    print("Sandbox detection with SimBench-like probe kernels")
    print("=" * 66)
    print("%-10s %9s %9s %9s %11s   %s"
          % ("engine", "smc", "trap", "mmio", "ns/insn", "verdict"))
    for name in ("qemu-dbt", "simit", "gem5", "qemu-kvm", "native"):
        label, fp = detect_registry_engine(name)
        print("%-10s %9.1f %9.1f %9.1f %11.2f   %s"
              % (name, fp.smc_ratio, fp.trap_ratio, fp.mmio_ratio,
                 fp.ns_per_insn, label))
    print()
    print("How each technology betrays itself:")
    print("  dbt          rewriting code forces retranslation: the SMC probe")
    print("               costs ~25x its call-matched baseline.")
    print("  virtualized  device reads vm-exit: the MMIO probe costs ~90")
    print("               baseline iterations each.")
    print("  detailed     everything is uniformly slow (needs an external")
    print("               clock reference to see absolute speed).")
    print("  interpreter  moderate per-instruction cost, no DBT signature.")
    print("  native       every ratio near 1 and per-instruction cost tiny.")
    print()
    print("(Exactly the mechanism differences Figures 4 and 7 measure --")
    print(" which is why SimBench kernels make good detection probes.)")


if __name__ == "__main__":
    main()
