#!/usr/bin/env python
"""Porting SimBench to a new platform (Section II-C).

The paper's portability claim: benchmarks contain no platform- or
architecture-specific code, so a port only writes support packages.
This example defines a brand-new platform ("raspi-ish": a different
memory map, devices at new addresses, a different interrupt line) in a
few lines, and then runs the *unmodified* benchmark suite on it.
"""

from repro.arch import ARM
from repro.core import Harness, SUITE
from repro.platform.base import MemoryLayout, PlatformDescription

_MB = 1 << 20

# The entire port: one platform description.
RASPI_ISH = PlatformDescription(
    name="raspi-ish",
    layout=MemoryLayout(
        ram_base=0x0000_0000,
        ram_size=64 * _MB,
        vector_base=0x0000_6000,
        code_base=0x0002_0000,
        stack_top=0x000E_0000,
        l1_table=0x0108_0000,
        l2_pool=0x0109_0000,
        data_base=0x0240_0000,
        cold_base=0x02C0_0000,
        unmapped_vaddr=0x4000_0000,
    ),
    uart_base=0xD000_0000,
    testctl_base=0xD000_1000,
    safedev_base=0xD000_2000,
    timer_base=0xD000_3000,
    intc_base=0xD000_4000,
    swirq_line=5,
    description="example port: BCM-style peripheral block at 0xD0000000",
)


def main():
    print("Ported platform: %s" % RASPI_ISH.name)
    print("  %s" % RASPI_ISH.description)
    print("  devices at 0x%08x..; software IRQ line %d"
          % (RASPI_ISH.uart_base, RASPI_ISH.swirq_line))
    print()
    print("Running the unmodified 18-benchmark suite on the new platform:")
    harness = Harness()
    suite_result = harness.run_suite("qemu-dbt", ARM, RASPI_ISH, scale=0.25)
    failures = 0
    for result in suite_result:
        print("  %-28s %-6s %10.4f ms  (%d iterations)"
              % (result.benchmark, result.status, result.kernel_ns / 1e6, result.iterations))
        if result.status not in ("ok", "not-applicable"):
            failures += 1
    print()
    if failures:
        print("PORT FAILED: %d benchmarks did not run" % failures)
        raise SystemExit(1)
    print("Port complete: every benchmark retargeted through the platform")
    print("package alone -- no benchmark code was touched, matching the")
    print("paper's ~200-line-per-platform porting story.")


if __name__ == "__main__":
    main()
