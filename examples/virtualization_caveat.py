#!/usr/bin/env python
"""Section III-B.2: virtualization vs native performance.

Application benchmarks make hardware-assisted virtualization look
identical to bare metal; SimBench exposes where it is not.  This
example runs the SPEC proxies *and* SimBench on the KVM-style model
and the native model, for both guest profiles, and reports the
divergences the paper found: interrupt delivery, memory-mapped device
access, and (on x86) undefined-instruction hypercalls.
"""

from repro.analysis import figures
from repro.arch import ARM, X86
from repro.core import Harness
from repro.platform import PCPLAT, VEXPRESS
from repro.workloads import SPEC_PROXIES


def main():
    harness = Harness()

    print("Application view: KVM vs native on the SPEC proxies (ARM guest)")
    print("=" * 64)
    ratios = []
    for workload in SPEC_PROXIES[:6]:
        kvm = harness.run_benchmark(workload, "qemu-kvm", ARM, VEXPRESS, iterations=2)
        native = harness.run_benchmark(workload, "native", ARM, VEXPRESS, iterations=2)
        ratio = kvm.kernel_ns / native.kernel_ns
        ratios.append(ratio)
        print("  %-12s kvm/native = %5.2fx" % (workload.name, ratio))
    print("  -> compute workloads look near-native; nothing alarming here.")

    print()
    print("SimBench view: where virtualization actually pays")
    print("=" * 64)
    fig7 = figures.figure7(harness=harness, scale=0.5)
    divergences = figures.explain_virtualization(fig7)
    for arch_name in ("arm", "x86"):
        print()
        print("  %s guest (kvm/native ratio, worst first):" % arch_name)
        for name, ratio in divergences[arch_name][:6]:
            marker = " <-- trapped operation" if ratio > 5 else ""
            print("    %-28s %8.1fx%s" % (name, ratio, marker))

    print()
    print("The paper's conclusion, reproduced: accesses to emulated devices")
    print("and software interrupts are trapped into the virtualization")
    print("layer at enormous cost, and x86 KVM reflects undefined")
    print("instructions as hypercalls -- none of which application")
    print("benchmarks can surface.")


if __name__ == "__main__":
    main()
