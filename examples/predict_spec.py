#!/usr/bin/env python
"""Contribution 3: model application performance from SimBench metrics.

Fits a linear per-operation cost model for the DBT engine from one
SimBench suite run, then predicts each SPEC proxy's runtime from a
single profiled event-count vector -- "without the need to repeatedly
run full-scale application benchmarks" -- and compares against the
measured runtimes.
"""

from repro.arch import ARM
from repro.core import Harness, PerformanceModel
from repro.core.predict import predict_workloads
from repro.platform import VEXPRESS
from repro.workloads import SPEC_PROXIES


def main():
    harness = Harness()

    print("Fitting the cost model from one SimBench run on qemu-dbt ...")
    suite_result = harness.run_suite("qemu-dbt", ARM, VEXPRESS, scale=0.5)
    model = PerformanceModel.fit(suite_result, ARM)
    print("  base cost: %.1f ns/instruction" % model.base_ns_per_insn)
    print("  per-operation extra costs (top 8):")
    for counter, cost in sorted(model.extra_ns_per_op.items(), key=lambda kv: -kv[1])[:8]:
        print("    %-22s %10.1f ns" % (counter, cost))

    lstsq_model = PerformanceModel.fit_least_squares(suite_result, ARM)

    print()
    print("Predicting the SPEC proxies from their profiles ...")
    for label, m in (("per-benchmark heuristic", model), ("NNLS over the suite", lstsq_model)):
        rows = predict_workloads(
            m, harness, SPEC_PROXIES, ARM, VEXPRESS, profile_simulator="qemu-dbt"
        )
        print()
        print("  [%s]" % label)
        print("  %-12s %14s %14s %9s" % ("workload", "predicted (ms)", "measured (ms)", "error"))
        total_abs_error = 0.0
        for name, predicted, measured, error in rows:
            total_abs_error += abs(error)
            print("  %-12s %14.4f %14.4f %8.1f%%"
                  % (name, predicted / 1e6, measured / 1e6, 100 * error))
        print("  mean |error| = %.1f%%" % (100 * total_abs_error / len(rows)))

    print()
    print("Trend-level fidelity, as the paper claims: detailed")
    print("micro-measurements approximate application behaviour without")
    print("re-running full applications -- and fitting across the whole")
    print("suite halves the error of the simple per-benchmark model.")


if __name__ == "__main__":
    main()
