#!/usr/bin/env python
"""Section III-B.1: explain the DBT vs interpretation performance gap.

Runs the full SimBench suite on the DBT engine, the fast interpreter
and the detailed interpreter (ARM guest), prints the Figure 7 columns,
and derives the paper's explanations from the engines' own event
counters:

- the Code Generation benchmarks are *faster* interpreted, because the
  DBT engine must retranslate every rewritten block;
- Cold Memory Access favours the interpreter's simpler MMU;
- everywhere hot, translated code wins by an order of magnitude;
- the detailed interpreter's per-instruction machinery makes it
  uniformly slowest.
"""

from repro.arch import ARM
from repro.core import Harness
from repro.platform import VEXPRESS

SIMULATORS = ("qemu-dbt", "simit", "gem5")


def main():
    harness = Harness()
    results = {}
    for simulator in SIMULATORS:
        results[simulator] = harness.run_suite(simulator, ARM, VEXPRESS, scale=0.5).by_name()

    print("%-28s %12s %12s %12s" % ("benchmark (modeled ms)", *SIMULATORS))
    for name, dbt in results["qemu-dbt"].items():
        row = ["%-28s" % name]
        for simulator in SIMULATORS:
            res = results[simulator][name]
            row.append("%12.4f" % (res.kernel_ns / 1e6) if res.ok else "%12s" % res.status)
        print(" ".join(row))

    print()
    print("Why the interpreter wins Code Generation:")
    for name in ("Small Blocks", "Large Blocks"):
        dbt = results["qemu-dbt"][name].kernel_delta
        interp = results["simit"][name].kernel_delta
        print(
            "  %-14s dbt: %5d retranslations (%6d insns regenerated); "
            "interpreter: %5d cheap decode invalidations"
            % (
                name + ":",
                dbt["translations"],
                dbt["translated_insns"],
                interp["smc_invalidations"],
            )
        )

    print()
    print("Why DBT wins hot code:")
    hot = results["qemu-dbt"]["Hot Memory Access"].kernel_delta
    print(
        "  Hot Memory Access on dbt: %d chained block transitions vs %d dispatcher"
        " lookups -- translated code runs back-to-back."
        % (hot["chain_follows"], hot["slow_dispatches"])
    )

    print()
    print("Why the interpreter wins the cold path:")
    print(
        "  Cold Memory Access: the interpreter's MMU model is cheaper to evaluate"
        " per TLB miss than the DBT engine's softmmu refill (the paper makes the"
        " same observation about SimIt-ARM vs QEMU's multi-version page tables)."
    )

    print()
    print("Why the detailed interpreter is slowest everywhere:")
    gem5 = results["gem5"]["Intra-Page Direct"].kernel_delta
    print(
        "  Intra-Page Direct on gem5: %d micro-ops and %d tick events for %d"
        " instructions -- detail has a uniform price."
        % (gem5["micro_ops"], gem5["tick_events"], gem5["instructions"])
    )


if __name__ == "__main__":
    main()
