#!/usr/bin/env python
"""A tour of the developer tooling: debugger, tracer, snapshots.

Simulator projects live or die by their bring-up tooling.  This example
walks a small guest program with the GDB-style debugger, traces its
instruction stream, and uses a machine snapshot to re-run the same
warmed-up state on two different engines.
"""

from repro.arch import ARM
from repro.isa.assembler import assemble
from repro.machine import Board
from repro.machine.snapshot import restore, snapshot
from repro.platform import VEXPRESS
from repro.sim import DBTSimulator, FastInterpreter
from repro.sim.debug import Debugger
from repro.sim.trace import Tracer

PROGRAM = """
.org 0x8000
_start:
    li sp, 0x100000
    movi r1, 4          ; loop counter
    li r6, 0x2000000    ; accumulator cell
loop:
    ldr r2, [r6]
    addi r2, r2, 25
    str r2, [r6]
    subi r1, r1, 1
    cmpi r1, 0
    bne loop
done:
    halt #0
"""


def fresh_board():
    board = Board(VEXPRESS)
    board.load(assemble(PROGRAM))
    return board


def main():
    program = assemble(PROGRAM)

    print("1. Debugger: break at the loop, watch the accumulator")
    print("=" * 60)
    board = fresh_board()
    engine = FastInterpreter(board, arch=ARM)
    dbg = Debugger(engine)
    dbg.add_breakpoint(program.symbol("loop"))
    reason = dbg.cont()
    print("   stopped (%s) at %s" % (reason, dbg.where()))
    dbg.remove_breakpoint(program.symbol("loop"))
    dbg.add_watchpoint(0x2000000)
    while dbg.cont() == "watchpoint":
        _reason, _pc, (addr, value) = dbg.hits[-1]
        print("   watchpoint: [0x%08x] <- %d   (next: %s)" % (addr, value, dbg.where()))
    print("   finished; r2 = %d" % dbg.read_registers()["r2"])

    print()
    print("2. Tracer: the exact instruction stream")
    print("=" * 60)
    board = fresh_board()
    engine = FastInterpreter(board, arch=ARM)
    with Tracer(engine, limit=12) as tracer:
        engine.run(max_insns=10_000)
    for record in tracer.records:
        print("  %r" % record)
    print("   ... (%d instructions total; opcode histogram: %s)"
          % (engine.counters.instructions, tracer.summary()))

    print()
    print("3. Snapshot: warm up once, re-run on two engines")
    print("=" * 60)
    board = fresh_board()
    warm = FastInterpreter(board, arch=ARM)
    warm.run(max_insns=9)  # through the prologue, parked at the loop
    snap = snapshot(board)
    print("   snapshot after prologue: %r" % snap)
    for engine_cls in (FastInterpreter, DBTSimulator):
        restore(board, snap)
        engine = engine_cls(board, arch=ARM)
        result = engine.run(max_insns=10_000)
        print("   %-10s resumed and %s with [0x2000000] = %d"
              % (engine_cls.name, result.exit_reason.value,
                 board.memory.read32(0x2000000)))


if __name__ == "__main__":
    main()
