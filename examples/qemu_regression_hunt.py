#!/usr/bin/env python
"""The motivating example: hunt a QEMU performance regression.

Reproduces the paper's core narrative (Sections I-A and III-B.3):

1. Application benchmarks show *that* something regressed: the SPEC
   proxies' overall rating declines across QEMU versions, with mcf
   hit far harder than sjeng -- but give no clue *why*.
2. SimBench shows *what* regressed: sweeping the micro-benchmarks over
   the same versions pinpoints control-flow dispatch and exception
   handling as the declining operations (and shows the v2.5.0-rc0
   data-fault fast path that no application benchmark can see).
"""

from repro.analysis import figures
from repro.analysis.sweep import VersionSweep
from repro.arch import ARM
from repro.core.suite import get_benchmark
from repro.platform import VEXPRESS
from repro.sim.dbt.versions import CHANGELOG


def main():
    print("Step 1: what the application suite shows")
    print("=" * 60)
    fig2 = figures.figure2(scale=0.5)
    print(figures.render_series(fig2, title=""))
    last = -1
    print()
    print("  -> overall SPEC rating at %s: %.3f (down from 1.0)"
          % (fig2["versions"][last], fig2["series"]["SPEC (overall)"][last]))
    print("  -> mcf: %.3f   sjeng: %.3f -- divergent, unexplained."
          % (fig2["series"]["mcf"][last], fig2["series"]["sjeng"][last]))

    print()
    print("Step 2: what SimBench shows")
    print("=" * 60)
    sweep = VersionSweep(ARM, VEXPRESS)
    suspects = {
        "Intra-Page Direct": "control-flow dispatch",
        "Inter-Page Indirect": "translation lookup",
        "System Call": "exception handling",
        "Data Access Fault": "data-fault handling",
        "TLB Flush": "TLB maintenance",
    }
    verdicts = []
    for name, mechanism in suspects.items():
        series = sweep.run(get_benchmark(name), iterations=200)
        speedups = series.speedups()
        verdicts.append((name, mechanism, speedups[-1], speedups))
    for name, mechanism, final, _ in sorted(verdicts, key=lambda v: v[2]):
        trend = "REGRESSED" if final < 0.9 else ("improved" if final > 1.1 else "stable")
        print("  %-22s (%-22s) final speedup %.2f  %s" % (name, mechanism, final, trend))

    print()
    print("Step 3: attribute the regression")
    print("=" * 60)
    print("  Control flow and exception handling decline steadily -- the")
    print("  operations mcf's call/return-heavy profile leans on; sjeng's")
    print("  straight-line compute rides the TCG optimiser improvements.")
    print("  The data-fault jump at v2.5.0-rc0 is invisible in SPEC, as the")
    print("  paper observes (data faults are vanishingly rare there).")
    print()
    print("Synthetic changelog used by this reproduction:")
    for version, note in CHANGELOG.items():
        print("  %-12s %s" % (version, note))


if __name__ == "__main__":
    main()
